// Package hotviol is the hot-path allocation test fixture: each
// annotated function exhibits exactly one construct the lint must flag,
// followed by annotated functions that are clean by design and an
// unannotated function the lint must ignore entirely. The unit test
// locates expectations by the trailing comments.
package hotviol

import "fmt"

//nclint:hotpath
func formats(n int) string {
	return fmt.Sprintf("%d", n) // fmt call on the hot path
}

//nclint:hotpath
func concatAssign(parts []string) string {
	var s string
	for _, p := range parts {
		s += p // string += in a loop
	}
	return s
}

//nclint:hotpath
func concatBinary(parts []string) string {
	out := ""
	for _, p := range parts {
		out = out + p // string + in a loop
	}
	return out
}

//nclint:hotpath
func mapLiteral(k string) map[string]int {
	return map[string]int{k: 1} // map literal allocates
}

//nclint:hotpath
func makesMap(n int) map[string]int {
	return make(map[string]int, n) // make(map) on the hot path
}

//nclint:hotpath
func rangesMap(m map[string]int) int {
	sum := 0
	for _, v := range m { // map iteration on the hot path
		sum += v
	}
	return sum
}

//nclint:hotpath
func growsVar(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // append to a bare var in a loop
	}
	return out
}

//nclint:hotpath
func growsLiteral(xs []int) []int {
	out := []int{}
	for _, x := range xs {
		out = append(out, x) // append to a literal-declared slice in a loop
	}
	return out
}

//nclint:hotpath
func growsMakeNoCap(xs []int) []int {
	out := make([]int, 0)
	for _, x := range xs {
		out = append(out, x) // append to a capacity-less make in a loop
	}
	return out
}

// --- clean by design: none of these may produce a finding -----------------

// growsHinted presizes; every append is within capacity.
//
//nclint:hotpath
func growsHinted(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// growsParam appends to a caller-owned slice: its capacity is the
// caller's contract.
//
//nclint:hotpath
func growsParam(out, xs []int) []int {
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// appendOnce is outside any loop: a single growth is not quadratic.
//
//nclint:hotpath
func appendOnce(xs []int) []int {
	var out []int
	out = append(out, xs...)
	return out
}

// probesMap reads one key: a map probe is fine on the hot path, only
// construction and iteration are flagged.
//
//nclint:hotpath
func probesMap(m map[string]int, k string) int {
	return m[k]
}

// justifiedFmt carries a justified exception and must NOT be flagged.
//
//nclint:hotpath
func justifiedFmt(n int) string {
	//nclint:allow hotpath -- fixture: error path only, never taken per event
	return fmt.Sprintf("%d", n)
}

// unjustifiedFmt carries a bare directive: the directive itself is a
// finding AND the call stays flagged.
//
//nclint:hotpath
func unjustifiedFmt(n int) string {
	//nclint:allow hotpath
	return fmt.Sprintf("%d", n) // fmt call with an unjustified allow directive
}

// coldPath is unannotated: it may allocate freely.
func coldPath(n int) string {
	return fmt.Sprintf("cold %d", n)
}
