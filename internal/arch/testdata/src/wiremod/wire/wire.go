// Package wire is the api-leak test fixture's stand-in for the real
// frame-protocol package; the leak detector matches it by import path
// identity, not by structure.
package wire

// Frame is the protocol carrier type that must never surface in an
// engine-layer API.
type Frame struct {
	Op      byte
	Payload []byte
}
