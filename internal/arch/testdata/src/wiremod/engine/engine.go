// Package engine is the api-leak test fixture: every shape of wire-type
// leak through an exported API, next to exports that keep wire types as
// private representation and must pass.
package engine

import "example.com/m/internal/wire"

// Decode leaks through a parameter.
func Decode(f wire.Frame) int { return int(f.Op) }

// Frames leaks through a slice result.
func Frames() []wire.Frame { return nil }

// Buffer leaks through an exported struct field.
type Buffer struct {
	Pending []wire.Frame
	n       int
}

// Queue leaks through an exported method's signature.
type Queue struct {
	N int
}

func (q *Queue) Push(f wire.Frame) { q.N++ }

// Last leaks through an exported package variable.
var Last wire.Frame

// Engine keeps its frame as unexported representation: not API, clean.
type Engine struct {
	last wire.Frame
	N    int
}

// Count never mentions wire at all: clean.
func Count(n int) int { return n + 1 }
