// Package lockviol is the lock-discipline test fixture: every blocking
// shape the pass must flag while a mutex is held, alongside the exempt
// shapes it must stay silent on. The unit test locates expectations by
// the trailing comments, so keep each marker unique within the file.
package lockviol

import (
	"sync"
	"time"
)

type broker struct {
	mu    sync.Mutex
	state sync.RWMutex
	cond  *sync.Cond
	wg    sync.WaitGroup
	in    chan int
	out   chan int
}

// sendUnderLock is the PR 5 deadlock shape verbatim.
func (b *broker) sendUnderLock(v int) {
	b.mu.Lock()
	b.out <- v // send while holding b.mu
	b.mu.Unlock()
}

func (b *broker) recvUnderRLock() int {
	b.state.RLock()
	defer b.state.RUnlock()
	return <-b.in // receive while holding b.state read lock
}

func (b *broker) selectUnderLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // defaultless select while holding b.mu
	case <-b.in:
	}
}

func (b *broker) waitUnderLock() {
	b.mu.Lock()
	b.wg.Wait() // WaitGroup.Wait while holding b.mu
	b.mu.Unlock()
}

func (b *broker) sleepUnderDeferredUnlock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	time.Sleep(time.Millisecond) // Sleep inside a deferred-unlock region
}

func (b *broker) rangeUnderLock() (n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for v := range b.in { // range over channel while holding b.mu
		n += v
	}
	return n
}

// justifiedSend carries a justified exception and must NOT be flagged.
func (b *broker) justifiedSend(v int) {
	b.mu.Lock()
	//nclint:allow lock-blocking -- fixture: reply channel is buffered for exactly one handshake
	b.out <- v
	b.mu.Unlock()
}

// unjustifiedSend carries a bare directive: the directive itself is a
// finding AND the send stays flagged.
func (b *broker) unjustifiedSend(v int) {
	b.mu.Lock()
	//nclint:allow lock-blocking
	b.out <- v // send with an unjustified allow directive
	b.mu.Unlock()
}

// --- exempt shapes: none of these may produce a finding -------------------

// sendAfterUnlock blocks only once the mutex is released.
func (b *broker) sendAfterUnlock(v int) {
	b.mu.Lock()
	v++
	b.mu.Unlock()
	b.out <- v
}

// selectWithDefault cannot block.
func (b *broker) selectWithDefault(v int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case b.out <- v:
		return true
	default:
		return false
	}
}

// condWait releases the mutex while waiting — that is sync.Cond's job.
func (b *broker) condWait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cond.Wait()
}

// goroutineUnderLock spawns the blocking work; the holder never blocks.
func (b *broker) goroutineUnderLock(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		b.out <- v
	}()
}

// distinctMutexes: the send happens under b.state only after b.mu is
// released; regions are keyed per mutex expression.
func (b *broker) distinctMutexes(v int) {
	b.mu.Lock()
	v++
	b.mu.Unlock()
	b.out <- v
	b.state.RLock()
	v--
	b.state.RUnlock()
}
