package arch

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CheckLockDiscipline flags blocking operations lexically between
// Lock()/Unlock() (or RLock()/RUnlock()) of the same sync mutex — the
// exact shape of the PR 5 overlay inbox-cycle deadlock, where a broker
// blocked on a channel send while holding its own state lock and the peer
// it was sending to was blocked the same way in reverse.
//
// Blocking operations: channel sends, channel receives, selects without a
// default case, ranging over a channel, sync.WaitGroup.Wait and
// time.Sleep. A select WITH a default is non-blocking and exempt, as is
// sync.Cond.Wait (it releases the mutex it guards — that is its job).
//
// The analysis is lexical and per-function: a Lock opens a region that
// the next Unlock of the same mutex expression closes (a deferred Unlock,
// or a missing one, extends the region to the end of the function), and
// nested function literals are analysed as their own functions — a
// goroutine spawned under the lock does not block the holder. Deliberate
// exceptions carry `//nclint:allow lock-blocking -- <justification>` on
// the offending or preceding line.
func CheckLockDiscipline(mod *Module) []Finding {
	var out []Finding
	for _, p := range mod.Packages {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch x := n.(type) {
				case *ast.FuncDecl:
					body = x.Body
				case *ast.FuncLit:
					body = x.Body
				}
				if body != nil {
					out = append(out, checkLockBody(mod, p, body)...)
				}
				return true
			})
		}
	}
	return out
}

type lockEvKind int

const (
	evLock lockEvKind = iota
	evUnlock
	evDeferUnlock
	evBlocking
)

type lockEv struct {
	pos  token.Pos
	end  token.Pos
	kind lockEvKind
	key  string // mutex expression ("b.mu"), ":r"-suffixed for RLock pairs
	desc string // blocking-operation description
}

// checkLockBody analyses one function body (excluding nested literals).
func checkLockBody(mod *Module, p *Package, body *ast.BlockStmt) []Finding {
	evs := collectLockEvents(p, body)
	sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })

	// Pair each Lock with the next Unlock of the same key; deferred or
	// missing Unlocks hold to the end of the body.
	type region struct{ from, to token.Pos }
	var regions []struct {
		region
		key string
		at  token.Position
	}
	used := make([]bool, len(evs))
	for i, ev := range evs {
		if ev.kind != evLock {
			continue
		}
		to := body.End()
		for j := i + 1; j < len(evs); j++ {
			if used[j] || evs[j].key != ev.key {
				continue
			}
			if evs[j].kind == evUnlock {
				used[j] = true
				to = evs[j].pos
				break
			}
			if evs[j].kind == evDeferUnlock {
				used[j] = true
				break // deferred: held to function end
			}
		}
		regions = append(regions, struct {
			region
			key string
			at  token.Position
		}{region{ev.end, to}, ev.key, mod.Fset.Position(ev.pos)})
	}
	if len(regions) == 0 {
		return nil
	}

	var out []Finding
	for _, ev := range evs {
		if ev.kind != evBlocking {
			continue
		}
		for _, r := range regions {
			if ev.pos <= r.from || ev.pos >= r.to {
				continue
			}
			pos := mod.Fset.Position(ev.pos)
			ok, bad := p.allows.allowed(p.ImportPath, "lock-blocking", pos)
			if bad != nil {
				out = append(out, *bad)
			}
			if ok {
				break
			}
			out = append(out, Finding{
				Pos: pos, Rule: "lock-blocking", Pkg: p.ImportPath,
				Msg: fmt.Sprintf("%s while holding %s (locked at line %d); a blocked holder wedges every other user of the mutex — queue (router.Queue), use a default case, or move the operation outside the lock",
					ev.desc, mutexName(r.key), r.at.Line),
			})
			break
		}
	}
	return out
}

// mutexName strips the read-mode tag for messages.
func mutexName(key string) string {
	if len(key) > 2 && key[len(key)-2:] == ":r" {
		return key[:len(key)-2] + " (read lock)"
	}
	return key
}

// collectLockEvents gathers lock/unlock/blocking events in one body,
// skipping nested function literals and the guard statements of select
// clauses (a select's blocking behaviour is reported on the select
// itself, and only when it has no default).
func collectLockEvents(p *Package, body *ast.BlockStmt) []lockEv {
	// Positions to suppress: select comm clauses (their send/receive is
	// select machinery, not an independent operation) and nested literals.
	type posRange struct{ from, to token.Pos }
	var skips []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if n != body { // the body itself may be a literal's body
				skips = append(skips, posRange{x.Pos(), x.End()})
				return false
			}
		case *ast.SelectStmt:
			for _, s := range x.Body.List {
				if c, ok := s.(*ast.CommClause); ok && c.Comm != nil {
					skips = append(skips, posRange{c.Comm.Pos(), c.Comm.End()})
				}
			}
		}
		return true
	})
	skipped := func(pos token.Pos) bool {
		for _, r := range skips {
			if pos >= r.from && pos < r.to {
				return true
			}
		}
		return false
	}

	var evs []lockEv
	handledCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if skipped(n.Pos()) {
			return true // descend: clause bodies live inside select ranges
		}
		switch x := n.(type) {
		case *ast.DeferStmt:
			if kind, key, ok := classifyLockCall(p, x.Call); ok && kind == evUnlock {
				handledCalls[x.Call] = true
				evs = append(evs, lockEv{pos: x.Pos(), end: x.End(), kind: evDeferUnlock, key: key})
			}
		case *ast.CallExpr:
			if handledCalls[x] {
				return true
			}
			if kind, key, ok := classifyLockCall(p, x); ok {
				evs = append(evs, lockEv{pos: x.Pos(), end: x.End(), kind: kind, key: key})
			} else if desc, blocking := classifyBlockingCall(p, x); blocking {
				evs = append(evs, lockEv{pos: x.Pos(), end: x.End(), kind: evBlocking, desc: desc})
			}
		case *ast.SendStmt:
			evs = append(evs, lockEv{pos: x.Pos(), end: x.End(), kind: evBlocking, desc: "blocking channel send"})
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				evs = append(evs, lockEv{pos: x.Pos(), end: x.End(), kind: evBlocking, desc: "blocking channel receive"})
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, s := range x.Body.List {
				if c, ok := s.(*ast.CommClause); ok && c.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				evs = append(evs, lockEv{pos: x.Pos(), end: x.End(), kind: evBlocking, desc: "blocking select (no default case)"})
			}
		case *ast.RangeStmt:
			if p.Info != nil {
				if tv, ok := p.Info.Types[x.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						evs = append(evs, lockEv{pos: x.Pos(), end: x.X.End(), kind: evBlocking, desc: "blocking range over channel"})
					}
				}
			}
		}
		return true
	})
	return evs
}

// classifyLockCall recognises m.Lock/Unlock/RLock/RUnlock on sync.Mutex
// and sync.RWMutex receivers (including embedded ones). The key is the
// receiver expression text, so distinct mutexes get distinct regions.
func classifyLockCall(p *Package, call *ast.CallExpr) (kind lockEvKind, key string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return 0, "", false
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "Unlock" && name != "RLock" && name != "RUnlock" {
		return 0, "", false
	}
	if !isSyncMethod(p, sel, "Mutex") && !isSyncMethod(p, sel, "RWMutex") {
		return 0, "", false
	}
	key = types.ExprString(sel.X)
	if name == "RLock" || name == "RUnlock" {
		key += ":r"
	}
	if name == "Lock" || name == "RLock" {
		return evLock, key, true
	}
	return evUnlock, key, true
}

// classifyBlockingCall recognises known-blocking calls that do not
// release any mutex: sync.WaitGroup.Wait and time.Sleep. sync.Cond.Wait
// is deliberately exempt.
func classifyBlockingCall(p *Package, call *ast.CallExpr) (string, bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	if sel.Sel.Name == "Wait" && isSyncMethod(p, sel, "WaitGroup") {
		return "blocking sync.WaitGroup.Wait", true
	}
	if sel.Sel.Name == "Sleep" && usesPackage(p, sel, "time") {
		return "blocking time.Sleep", true
	}
	return "", false
}

// isSyncMethod reports whether the selector resolves to a method of the
// named sync type.
func isSyncMethod(p *Package, sel *ast.SelectorExpr, typeName string) bool {
	if p.Info == nil {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == typeName
}

// usesPackage reports whether the selector's identifier resolves into the
// given package.
func usesPackage(p *Package, sel *ast.SelectorExpr, pkgPath string) bool {
	if p.Info == nil {
		return false
	}
	obj := p.Info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
