package arch

import (
	"fmt"
	"go/types"
)

// CheckAPILeaks verifies that internal/wire types never appear in the
// exported API (function signatures, exported struct fields, exported
// type definitions, vars and consts) of any package not explicitly marked
// WireInAPI. Wire types are value carriers of the frame protocol; letting
// them surface in engine-layer APIs is how wire/value semantics leaked
// across layers before (the PR 4 interning bug). The check is type-based,
// so a leak through an alias or an embedded field is caught even though
// the layering rule already forbids the direct import.
func CheckAPILeaks(mod *Module, policy Policy) []Finding {
	wirePath := mod.Path + "/internal/wire"
	var out []Finding
	for _, p := range mod.Packages {
		rule := policy.Packages[mod.rel(p.ImportPath)]
		if rule.WireInAPI || p.Types == nil || p.ImportPath == wirePath {
			continue
		}
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			obj := scope.Lookup(name)
			if !obj.Exported() {
				continue
			}
			w := &wireWalker{wirePath: wirePath, seen: map[types.Type]bool{}}
			w.walkObject(obj)
			if w.hit != "" {
				out = append(out, Finding{
					Pos: mod.Fset.Position(obj.Pos()), Rule: "api-leak", Pkg: p.ImportPath,
					Msg: fmt.Sprintf("exported %s %s mentions %s in its API; wire types must stay behind the transport boundary", objKind(obj), name, w.hit),
				})
			}
		}
	}
	return out
}

func objKind(obj types.Object) string {
	switch obj.(type) {
	case *types.Func:
		return "func"
	case *types.TypeName:
		return "type"
	case *types.Var:
		return "var"
	case *types.Const:
		return "const"
	default:
		return "object"
	}
}

// wireWalker searches a type structure for named types from the wire
// package. Named types from other packages are checked for identity but
// not expanded — their structure is their own package's responsibility.
type wireWalker struct {
	wirePath string
	seen     map[types.Type]bool
	hit      string // offending type, "" when clean
}

func (w *wireWalker) walkObject(obj types.Object) {
	if tn, ok := obj.(*types.TypeName); ok && !tn.IsAlias() {
		// An exported defined type: check its underlying structure and the
		// signatures of its exported methods.
		if named, ok := tn.Type().(*types.Named); ok {
			w.walk(named.Underlying())
			for i := 0; i < named.NumMethods() && w.hit == ""; i++ {
				if m := named.Method(i); m.Exported() {
					w.walk(m.Type())
				}
			}
			return
		}
	}
	w.walk(obj.Type())
}

func (w *wireWalker) walk(t types.Type) {
	if w.hit != "" || t == nil || w.seen[t] {
		return
	}
	w.seen[t] = true
	switch x := t.(type) {
	case *types.Named:
		if obj := x.Obj(); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == w.wirePath {
			w.hit = "wire." + obj.Name()
		}
	case *types.Alias:
		w.walk(types.Unalias(x))
	case *types.Pointer:
		w.walk(x.Elem())
	case *types.Slice:
		w.walk(x.Elem())
	case *types.Array:
		w.walk(x.Elem())
	case *types.Map:
		w.walk(x.Key())
		w.walk(x.Elem())
	case *types.Chan:
		w.walk(x.Elem())
	case *types.Signature:
		w.walk(x.Params())
		w.walk(x.Results())
	case *types.Tuple:
		for i := 0; i < x.Len(); i++ {
			w.walk(x.At(i).Type())
		}
	case *types.Struct:
		for i := 0; i < x.NumFields(); i++ {
			// Exported and embedded fields are API; unexported plain fields
			// are representation.
			if f := x.Field(i); f.Exported() || f.Embedded() {
				w.walk(f.Type())
			}
		}
	case *types.Interface:
		for i := 0; i < x.NumExplicitMethods(); i++ {
			w.walk(x.ExplicitMethod(i).Type())
		}
		for i := 0; i < x.NumEmbeddeds(); i++ {
			w.walk(x.EmbeddedType(i))
		}
	}
}
