package arch

import (
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// TestLockDisciplineFixture pins the lock-blocking rule against the
// checked-in violation package: every blocking-under-lock shape fires,
// every exempt shape stays silent, and the whole finding set is compared
// — an unexpected extra finding fails just like a missed one.
func TestLockDisciplineFixture(t *testing.T) {
	mod, p := loadFixture(t, "lockviol")
	got := findingLines(CheckLockDiscipline(mod))

	want := wantLines(t, p, map[string][]string{
		"lock-blocking": {
			"send while holding b.mu",
			"receive while holding b.state read lock",
			"defaultless select while holding b.mu",
			"WaitGroup.Wait while holding b.mu",
			"Sleep inside a deferred-unlock region",
			"range over channel while holding b.mu",
			"send with an unjustified allow directive",
		},
	})
	// The bare directive is itself a finding, positioned on its own line
	// (one above the send it fails to excuse).
	directiveLine := fixtureLine(t, p, "send with an unjustified allow directive") - 1
	want = append(want, "directive@"+strconv.Itoa(directiveLine))
	sort.Strings(want)

	if !reflect.DeepEqual(got, want) {
		t.Errorf("lock-discipline findings mismatch:\n got  %v\n want %v", got, want)
	}
}

// TestLockDisciplineMessages spot-checks that findings explain themselves:
// the mutex, the lock site and the remedy all appear.
func TestLockDisciplineMessages(t *testing.T) {
	mod, _ := loadFixture(t, "lockviol")
	var sendMsg, dirMsg string
	for _, f := range CheckLockDiscipline(mod) {
		if f.Rule == "lock-blocking" && strings.Contains(f.Msg, "channel send") && sendMsg == "" {
			sendMsg = f.Msg
		}
		if f.Rule == "directive" {
			dirMsg = f.Msg
		}
	}
	for _, frag := range []string{"blocking channel send", "while holding b.mu", "locked at line"} {
		if !strings.Contains(sendMsg, frag) {
			t.Errorf("send finding %q missing %q", sendMsg, frag)
		}
	}
	if !strings.Contains(dirMsg, "needs a justification") {
		t.Errorf("directive finding %q should demand a justification", dirMsg)
	}
}

// TestLockDisciplineReadLockNaming checks the :r key renders readably.
func TestLockDisciplineReadLockNaming(t *testing.T) {
	if got := mutexName("b.state:r"); got != "b.state (read lock)" {
		t.Errorf("mutexName(b.state:r) = %q", got)
	}
	if got := mutexName("b.mu"); got != "b.mu" {
		t.Errorf("mutexName(b.mu) = %q", got)
	}
}
