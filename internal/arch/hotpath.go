package arch

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CheckHotPaths lints every function annotated `//nclint:hotpath` (the
// Match/MatchBatch/PublishBatch spine) against known-allocating
// constructs, so the roadmap's allocation-free-hot-path work starts from
// a gated baseline instead of a moving target:
//
//   - any call into package fmt (Sprintf and friends allocate, and their
//     interface arguments escape);
//   - string concatenation inside a loop (quadratic garbage);
//   - map literals (a map literal allocates even when empty);
//   - make(map[...]...) — constructing a map is an allocation, and the
//     flat-event refactor exists precisely so the spine never needs one;
//   - ranging over a map — iteration is randomized and pointer-chasing,
//     hostile to the cache discipline the sorted-attribute layout buys
//     (probing m[k] stays fine);
//   - append growing a locally-declared slice inside a loop when the
//     declaration carries no capacity hint (make with two arguments, a
//     plain var, or a literal — each append risks a reallocation).
//
// The testing.AllocsPerRun budgets in internal/core and internal/broker
// gate the dynamic side of the same invariant; this lint catches the
// constructs before they ever run. Deliberate exceptions carry
// `//nclint:allow hotpath -- <justification>`.
func CheckHotPaths(mod *Module) []Finding {
	var out []Finding
	for _, p := range mod.Packages {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasHotpathDirective(fd) {
					continue
				}
				out = append(out, checkHotBody(mod, p, fd)...)
			}
		}
	}
	return out
}

// hasHotpathDirective reports whether the function's doc comment carries
// //nclint:hotpath.
func hasHotpathDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), hotpathDirective) {
			return true
		}
	}
	return false
}

// checkHotBody lints one annotated function, tracking loop context.
// Function literals inside the body run on the same hot path and are
// included.
func checkHotBody(mod *Module, p *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	report := func(pos token.Pos, msg string) {
		position := mod.Fset.Position(pos)
		ok, bad := p.allows.allowed(p.ImportPath, "hotpath", position)
		if bad != nil {
			out = append(out, *bad)
		}
		if !ok {
			out = append(out, Finding{Pos: position, Rule: "hotpath", Pkg: p.ImportPath,
				Msg: msg + fmt.Sprintf(" in hot-path function %s", fd.Name.Name)})
		}
	}

	// loopRanges marks the lexical extents of for/range bodies.
	type posRange struct{ from, to token.Pos }
	var loops []posRange
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, posRange{x.Body.Pos(), x.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, posRange{x.Body.Pos(), x.Body.End()})
		}
		return true
	})
	inLoop := func(pos token.Pos) bool {
		for _, r := range loops {
			if pos >= r.from && pos < r.to {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && usesPackage(p, sel, "fmt") {
				report(x.Pos(), fmt.Sprintf("fmt.%s allocates", sel.Sel.Name))
			}
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "append" && isBuiltin(p, id) && inLoop(x.Pos()) {
				if target, unhinted := unhintedAppendTarget(p, fd, x); unhinted {
					report(x.Pos(), fmt.Sprintf("append grows %s without a capacity hint in a loop", target))
				}
			}
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "make" && isBuiltin(p, id) && isMapType(p, x) {
				report(x.Pos(), "make(map) allocates")
			}
		case *ast.RangeStmt:
			if isMapType(p, x.X) {
				report(x.X.Pos(), "map iteration is unordered and cache-hostile")
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && inLoop(x.Pos()) && isStringExpr(p, x) {
				report(x.Pos(), "string concatenation in a loop allocates")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && inLoop(x.Pos()) && len(x.Lhs) == 1 && isStringExpr(p, x.Lhs[0]) {
				report(x.Pos(), "string concatenation in a loop allocates")
			}
		case *ast.CompositeLit:
			if isMapType(p, x) {
				report(x.Pos(), "map literal allocates")
			}
		}
		return true
	})
	return out
}

// isMapType reports whether the expression's type is (underlying) a map.
func isMapType(p *Package, e ast.Expr) bool {
	if p.Info == nil {
		return false
	}
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func isBuiltin(p *Package, id *ast.Ident) bool {
	if p.Info == nil {
		return true // degrade toward reporting
	}
	_, ok := p.Info.Uses[id].(*types.Builtin)
	return ok
}

func isStringExpr(p *Package, e ast.Expr) bool {
	if p.Info == nil {
		return false
	}
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// unhintedAppendTarget inspects `append(s, ...)` growth targets declared
// in the same function. It reports unhinted=true when s's declaration
// visibly lacks a capacity hint: `var s []T`, `s := []T{...}` or
// `s := make([]T, n)`. Parameters, fields, package-level slices and
// slices built by other calls are skipped — their capacity is the
// caller's contract, not this function's.
func unhintedAppendTarget(p *Package, fd *ast.FuncDecl, call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 || p.Info == nil {
		return "", false
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return "", false
	}
	obj := p.Info.ObjectOf(id)
	if obj == nil {
		return "", false
	}
	declPos := obj.Pos()
	if declPos < fd.Body.Pos() || declPos >= fd.Body.End() {
		return "", false // parameter or outer declaration
	}
	unhinted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range x.Lhs {
				lid, isID := lhs.(*ast.Ident)
				if !isID || lid.Pos() != declPos || i >= len(x.Rhs) {
					continue
				}
				unhinted = rhsLacksCapacity(x.Rhs[i])
				return false
			}
		case *ast.ValueSpec:
			for i, name := range x.Names {
				if name.Pos() != declPos {
					continue
				}
				if len(x.Values) == 0 {
					unhinted = true // var s []T
				} else if i < len(x.Values) {
					unhinted = rhsLacksCapacity(x.Values[i])
				}
				return false
			}
		}
		return true
	})
	return id.Name, unhinted
}

// rhsLacksCapacity reports whether a slice declaration's right-hand side
// visibly lacks a capacity hint.
func rhsLacksCapacity(rhs ast.Expr) bool {
	switch x := rhs.(type) {
	case *ast.CompositeLit:
		return true // []T{...}: capacity is the literal's length
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "make" {
			return len(x.Args) < 3
		}
		return false // built elsewhere: capacity unknown, not our call
	default:
		return false
	}
}
