package arch

import (
	"go/token"
	"strings"
	"testing"
)

// syntheticModule builds an in-memory module (no files on disk) for the
// layering checker, which only needs import paths and the module path.
func syntheticModule(pkgs map[string][]string) *Module {
	mod := &Module{Path: "example.com/m", Fset: token.NewFileSet(), byPath: map[string]*Package{}}
	for rel, imports := range pkgs {
		path := "example.com/m/" + rel
		p := &Package{ImportPath: path, Imports: imports}
		mod.Packages = append(mod.Packages, p)
		mod.byPath[path] = p
	}
	return mod
}

// TestLayeringViolations drives every finding class of the layering rule
// through one synthetic module and asserts the exact finding count plus
// one identifying fragment per class.
func TestLayeringViolations(t *testing.T) {
	mod := syntheticModule(map[string][]string{
		"internal/a": {"fmt", "example.com/m/internal/b"},
		"internal/b": {"net/http", "golang.org/x/text/cases"},
		"internal/c": {},
		"internal/d": {"example.com/m/internal/b", "example.com/m/internal/a"},
	})
	policy := Policy{Packages: map[string]PackageRule{
		"internal/a": {Layer: "engine", Allow: []string{"internal/b", "internal/never"}},
		"internal/b": {Layer: "engine", ForbidStd: []string{"net"}},
		"internal/d": {Layer: "app",
			Deny: map[string]string{"internal/b": "d must not touch b"}},
		"internal/gone": {Layer: "engine"},
	}}

	findings := CheckLayering(mod, policy)
	fragments := []string{
		"package internal/c is not declared",
		"forbidden stdlib import net/http in engine-layer package internal/b",
		"third-party dependency golang.org/x/text/cases",
		"forbidden edge internal/d -> internal/b: d must not touch b",
		"forbidden edge internal/d -> internal/a: not in the layering DAG",
		"stale allowance internal/a -> internal/never",
		"policy declares internal/gone but no such package exists",
	}
	if len(findings) != len(fragments) {
		t.Errorf("got %d findings, want %d:\n%v", len(findings), len(fragments), findings)
	}
	for _, frag := range fragments {
		found := false
		for _, f := range findings {
			if strings.Contains(f.Msg, frag) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no layering finding contains %q; got %v", frag, findings)
		}
	}
}

// TestLayeringCleanModule: a module that matches its policy exactly
// produces no findings.
func TestLayeringCleanModule(t *testing.T) {
	mod := syntheticModule(map[string][]string{
		"internal/a": {"fmt", "example.com/m/internal/b"},
		"internal/b": {"sort"},
	})
	policy := Policy{Packages: map[string]PackageRule{
		"internal/a": {Layer: "engine", Allow: []string{"internal/b"}},
		"internal/b": {Layer: "kernel", ForbidStd: pureStd},
	}}
	if findings := CheckLayering(mod, policy); len(findings) != 0 {
		t.Errorf("clean module produced findings: %v", findings)
	}
}

// TestLayeringForbidStdIsPrefixNotSubstring: ForbidStd "net" must catch
// net and net/http but not netip-like names that merely share the prefix
// string.
func TestLayeringForbidStdIsPrefixNotSubstring(t *testing.T) {
	mod := syntheticModule(map[string][]string{
		"internal/a": {"internal/nettrace"}, // hypothetical: shares letters, not the path
	})
	policy := Policy{Packages: map[string]PackageRule{
		"internal/a": {Layer: "engine", ForbidStd: []string{"net"}},
	}}
	if findings := CheckLayering(mod, policy); len(findings) != 0 {
		t.Errorf("net prefix over-matched: %v", findings)
	}
}

func TestThirdPartyDetection(t *testing.T) {
	for path, want := range map[string]bool{
		"fmt":                    false,
		"net/http":               false,
		"golang.org/x/text":      true,
		"github.com/foo/bar":     true,
		"example.com/m/internal": true, // another module's path is third-party too
	} {
		if got := thirdParty(path); got != want {
			t.Errorf("thirdParty(%q) = %v, want %v", path, got, want)
		}
	}
}

// TestDefaultPolicyInvariants sanity-checks the checked-in table itself:
// allowances are module-relative (no accidental full paths), denies carry
// reasons, and the engine layers forbid the impure stdlib groups.
func TestDefaultPolicyInvariants(t *testing.T) {
	for rel, rule := range DefaultPolicy.Packages {
		for _, a := range rule.Allow {
			if strings.HasPrefix(a, "noncanon/") {
				t.Errorf("%s: allowance %q must be module-relative", rel, a)
			}
		}
		for dep, reason := range rule.Deny {
			if strings.TrimSpace(reason) == "" {
				t.Errorf("%s: deny of %s needs a reason", rel, dep)
			}
			for _, a := range rule.Allow {
				if a == dep {
					t.Errorf("%s: %s is both allowed and denied", rel, dep)
				}
			}
		}
	}
	for _, rel := range []string{"internal/value", "internal/core", "internal/matcher", "internal/subtree", "internal/index", "internal/shard"} {
		rule, ok := DefaultPolicy.Packages[rel]
		if !ok {
			t.Errorf("pure-compute package %s missing from policy", rel)
			continue
		}
		banned := map[string]bool{}
		for _, f := range rule.ForbidStd {
			banned[f] = true
		}
		for _, f := range pureStd {
			if !banned[f] {
				t.Errorf("%s: pure-compute layer must forbid stdlib %q", rel, f)
			}
		}
	}
	if _, ok := DefaultPolicy.Packages["internal/router"]; !ok {
		t.Fatal("internal/router missing from policy")
	}
	router := DefaultPolicy.Packages["internal/router"]
	if len(router.Deny) == 0 {
		t.Error("internal/router must carry named denials (wire, netoverlay)")
	}
	hasNet := false
	for _, f := range router.ForbidStd {
		if f == "net" {
			hasNet = true
		}
	}
	if !hasNet {
		t.Error("internal/router must forbid stdlib net: it is transport-agnostic")
	}
}
