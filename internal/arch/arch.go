// Package arch is a stdlib-only static-analysis suite that machine-checks
// the architectural invariants this repository has already paid for
// breaking once:
//
//   - Layering (imports.go): every package's imports must match the
//     declared DAG in policy.go exactly — no undeclared edge, no stale
//     allowance, no forbidden stdlib group (internal/router must stay
//     transport-agnostic: no net, no internal/wire). Violations name the
//     forbidden edge.
//   - API hygiene (apileak.go): internal/wire types must never appear in
//     the exported API of engine-layer packages, so wire/value semantics
//     cannot leak across the transport boundary again (the PR 4
//     interning-bug shape).
//   - Lock discipline (locks.go): no blocking channel operation lexically
//     between Lock()/Unlock() of the same sync mutex (the PR 5
//     inbox-cycle deadlock shape). sync.Cond.Wait is exempt — it releases
//     the mutex. Deliberate exceptions need
//     `//nclint:allow lock-blocking -- <justification>`.
//   - Hot-path allocations (hotpath.go): functions annotated
//     `//nclint:hotpath` are denied known-allocating constructs (fmt
//     calls, string concatenation in loops, map literals, unhinted append
//     growth in loops), the regression gate in front of the
//     allocation-free-hot-path roadmap item.
//
// The suite is built on go/parser, go/ast, go/types and `go list -json`
// only; `cmd/nclint` is its CLI and internal/arch's own tests run every
// rule against both the real tree (which must be clean) and checked-in
// violation fixtures under testdata.
package arch

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	// Pos locates the finding; it may be zero for package-level findings
	// (e.g. an undeclared import edge).
	Pos token.Position
	// Rule names the rule family: "layering", "api-leak", "lock-blocking",
	// "hotpath" or "directive".
	Rule string
	// Pkg is the import path of the offending package.
	Pkg string
	// Msg describes the violation, naming the forbidden edge or construct.
	Msg string
}

// String renders the finding in file:line: rule: message form.
func (f Finding) String() string {
	if f.Pos.Filename == "" {
		return fmt.Sprintf("%s: %s: %s", f.Pkg, f.Rule, f.Msg)
	}
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Rule, f.Msg)
}

// SortFindings orders findings by package, file and position for stable
// output.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Msg < b.Msg
	})
}

// Check runs every rule family over a loaded module and returns the
// combined findings, sorted.
func Check(mod *Module) []Finding {
	var out []Finding
	out = append(out, CheckLayering(mod, DefaultPolicy)...)
	out = append(out, CheckAPILeaks(mod, DefaultPolicy)...)
	out = append(out, CheckLockDiscipline(mod)...)
	out = append(out, CheckHotPaths(mod)...)
	SortFindings(out)
	return out
}

// --- directives -----------------------------------------------------------

// Directive prefixes recognised in comments.
const (
	// allowPrefix marks a deliberate, justified rule exception on the same
	// or the preceding line: //nclint:allow <rule> -- <justification>.
	allowPrefix = "nclint:allow"
	// hotpathDirective marks a function whose body is subject to the
	// hot-path allocation lint: //nclint:hotpath.
	hotpathDirective = "nclint:hotpath"
)

// allowDirective is one parsed //nclint:allow comment.
type allowDirective struct {
	rule          string
	justification string
	line          int
}

// parseAllow parses an //nclint:allow directive from a single comment's
// text (with the // already stripped). ok is false for non-directives.
func parseAllow(text string) (d allowDirective, ok bool) {
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, allowPrefix) {
		return d, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
	rule, just, _ := strings.Cut(rest, "--")
	d.rule = strings.TrimSpace(rule)
	d.justification = strings.TrimSpace(just)
	return d, true
}

// allowIndex maps file -> line -> directive for one package, so a finding
// on line N can look up an exception on line N or N-1.
type allowIndex map[string]map[int]allowDirective

// allowed reports whether a directive for rule covers the given position,
// and returns a finding when the directive exists but carries no
// justification (an unjustified exception is itself a violation).
func (ai allowIndex) allowed(pkg, rule string, pos token.Position) (ok bool, bad *Finding) {
	lines := ai[pos.Filename]
	for _, ln := range []int{pos.Line, pos.Line - 1} {
		d, exists := lines[ln]
		if !exists || d.rule != rule {
			continue
		}
		if d.justification == "" {
			f := Finding{
				Pos:  token.Position{Filename: pos.Filename, Line: ln},
				Rule: "directive",
				Pkg:  pkg,
				Msg:  fmt.Sprintf("nclint:allow %s needs a justification (use `-- <why>`)", rule),
			}
			return false, &f
		}
		return true, nil
	}
	return false, nil
}
