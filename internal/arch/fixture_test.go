package arch

import (
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// loadFixture loads testdata/src/<name> as a single-package module named
// "fixture", parsed and typechecked exactly like the real loader (stdlib
// from GOROOT source). Fixtures live under testdata so the go tool — and
// therefore nclint's own whole-repo run — never sees them.
func loadFixture(t *testing.T, name string) (*Module, *Package) {
	t.Helper()
	mod := newFixtureModule(t, "fixture")
	p := addFixturePackage(t, mod, "fixture/"+name, name)
	mod.typecheck()
	requireTypechecked(t, mod)
	return mod, p
}

// loadWireFixture loads the two-package api-leak fixture under module
// path example.com/m, so the leaky package's wire import resolves through
// the module importer like a real intra-module edge.
func loadWireFixture(t *testing.T) *Module {
	t.Helper()
	mod := newFixtureModule(t, "example.com/m")
	addFixturePackage(t, mod, "example.com/m/internal/wire", "wiremod/wire")
	eng := addFixturePackage(t, mod, "example.com/m/internal/engine", "wiremod/engine")
	eng.Imports = []string{"example.com/m/internal/wire"}
	mod.typecheck()
	requireTypechecked(t, mod)
	return mod
}

func newFixtureModule(t *testing.T, path string) *Module {
	t.Helper()
	return &Module{Path: path, Fset: token.NewFileSet(), byPath: map[string]*Package{}}
}

func addFixturePackage(t *testing.T, mod *Module, importPath, subdir string) *Package {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", subdir))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := &Package{ImportPath: importPath, Dir: dir}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			p.GoFiles = append(p.GoFiles, e.Name())
		}
	}
	if len(p.GoFiles) == 0 {
		t.Fatalf("no fixture sources in %s", dir)
	}
	if err := p.parse(mod.Fset); err != nil {
		t.Fatal(err)
	}
	mod.Packages = append(mod.Packages, p)
	mod.byPath[importPath] = p
	return p
}

func requireTypechecked(t *testing.T, mod *Module) {
	t.Helper()
	for _, p := range mod.Packages {
		for _, err := range p.TypeErrs {
			t.Fatalf("fixture %s does not typecheck: %v", p.ImportPath, err)
		}
	}
}

// fixtureLine returns the 1-based line in the package's (single) source
// file whose text contains marker; the marker must be unique.
func fixtureLine(t *testing.T, p *Package, marker string) int {
	t.Helper()
	if len(p.GoFiles) != 1 {
		t.Fatalf("fixtureLine wants a single-file package, got %v", p.GoFiles)
	}
	src, err := os.ReadFile(filepath.Join(p.Dir, p.GoFiles[0]))
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	line := 0
	for i, l := range strings.Split(string(src), "\n") {
		if strings.Contains(l, marker) {
			found++
			line = i + 1
		}
	}
	if found != 1 {
		t.Fatalf("marker %q matched %d lines, want exactly 1", marker, found)
	}
	return line
}

// findingLines renders findings as "rule@line" strings, sorted, for
// whole-set comparison against fixture expectations.
func findingLines(fs []Finding) []string {
	out := make([]string, 0, len(fs))
	for _, f := range fs {
		out = append(out, f.Rule+"@"+strconv.Itoa(f.Pos.Line))
	}
	sort.Strings(out)
	return out
}

func wantLines(t *testing.T, p *Package, expect map[string][]string) []string {
	t.Helper()
	var out []string
	for rule, markers := range expect {
		for _, m := range markers {
			out = append(out, rule+"@"+strconv.Itoa(fixtureLine(t, p, m)))
		}
	}
	sort.Strings(out)
	return out
}
