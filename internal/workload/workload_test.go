package workload

import (
	"math/rand"
	"strings"
	"testing"

	"noncanon/internal/boolexpr"
	"noncanon/internal/core"
	"noncanon/internal/counting"
	"noncanon/internal/index"
	"noncanon/internal/predicate"
)

func TestValidate(t *testing.T) {
	good := Params{NumSubscriptions: 10, PredsPerSub: 6, FulfilledPerEvent: 5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []Params{
		{NumSubscriptions: 0, PredsPerSub: 6},
		{NumSubscriptions: 10, PredsPerSub: 5},
		{NumSubscriptions: 10, PredsPerSub: 0},
		{NumSubscriptions: 10, PredsPerSub: 6, FulfilledPerEvent: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestTableOneDerivedQuantities(t *testing.T) {
	// Table 1: 6..10 predicates → 8..32 transformed subscriptions of 3..5
	// predicates.
	tests := []struct {
		preds, transformed, perTransformed int
	}{
		{6, 8, 3},
		{8, 16, 4},
		{10, 32, 5},
	}
	for _, tt := range tests {
		p := Params{NumSubscriptions: 1, PredsPerSub: tt.preds}
		if got := p.TransformedPerSub(); got != tt.transformed {
			t.Errorf("|p|=%d: TransformedPerSub = %d, want %d", tt.preds, got, tt.transformed)
		}
		if got := p.PredsPerTransformed(); got != tt.perTransformed {
			t.Errorf("|p|=%d: PredsPerTransformed = %d, want %d", tt.preds, got, tt.perTransformed)
		}
	}
}

func TestSubStructure(t *testing.T) {
	p := Params{NumSubscriptions: 100, PredsPerSub: 10}
	e := p.Sub(42)
	and, ok := e.(boolexpr.And)
	if !ok || len(and.Xs) != 5 {
		t.Fatalf("Sub must be an And of 5 pairs: %s", e)
	}
	for _, pair := range and.Xs {
		or, ok := pair.(boolexpr.Or)
		if !ok || len(or.Xs) != 2 {
			t.Fatalf("pair must be an Or of 2: %s", pair)
		}
	}
	if got := len(boolexpr.Leaves(e)); got != 10 {
		t.Errorf("leaves = %d, want 10", got)
	}
	// Deterministic.
	if !boolexpr.Equal(p.Sub(42), e) {
		t.Error("Sub not deterministic")
	}
}

func TestSubPredicatesGloballyUnique(t *testing.T) {
	p := Params{NumSubscriptions: 500, PredsPerSub: 8}
	seen := map[string]bool{}
	for i := 0; i < p.NumSubscriptions; i++ {
		for _, pr := range boolexpr.Leaves(p.Sub(i)) {
			k := pr.String()
			if seen[k] {
				t.Fatalf("duplicate predicate %s (sub %d)", k, i)
			}
			seen[k] = true
		}
	}
	if len(seen) != p.TotalPredicates() {
		t.Errorf("universe = %d, want %d", len(seen), p.TotalPredicates())
	}
}

func TestSubDNFMatchesTableOne(t *testing.T) {
	p := Params{NumSubscriptions: 10, PredsPerSub: 8}
	d, err := boolexpr.ToDNF(p.Sub(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 16 {
		t.Errorf("DNF size = %d, want 16", len(d))
	}
	for _, c := range d {
		if len(c) != 4 {
			t.Errorf("conjunction size = %d, want 4", len(c))
		}
	}
}

func TestRegistryIDsDenseAndDeterministic(t *testing.T) {
	// The FulfilledDraw contract: registering subscriptions in order against
	// a fresh shared registry yields predicate IDs exactly 1..TotalPredicates.
	p := Params{NumSubscriptions: 50, PredsPerSub: 6}
	reg := predicate.NewRegistry()
	idx := index.New()
	nc := core.New(reg, idx, core.Options{})
	cl := counting.New(reg, idx, counting.Options{})
	for i := 0; i < p.NumSubscriptions; i++ {
		if _, err := nc.Subscribe(p.Sub(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Subscribe(p.Sub(i)); err != nil {
			t.Fatal(err)
		}
	}
	if reg.Len() != p.TotalPredicates() {
		t.Fatalf("registry = %d predicates, want %d", reg.Len(), p.TotalPredicates())
	}
	if reg.Cap() != p.TotalPredicates() {
		t.Fatalf("registry cap = %d, want dense %d", reg.Cap(), p.TotalPredicates())
	}
}

func TestFulfilledDraw(t *testing.T) {
	p := Params{NumSubscriptions: 100, PredsPerSub: 6, FulfilledPerEvent: 50}
	rng := rand.New(rand.NewSource(p.Seed))
	draw := p.FulfilledDraw(rng)
	if len(draw) != 50 {
		t.Fatalf("draw size = %d", len(draw))
	}
	seen := map[predicate.ID]bool{}
	for _, id := range draw {
		if id < 1 || int(id) > p.TotalPredicates() {
			t.Fatalf("id %d out of universe", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
	// Draw larger than universe clamps.
	small := Params{NumSubscriptions: 2, PredsPerSub: 6, FulfilledPerEvent: 100}
	if got := len(small.FulfilledDraw(rng)); got != 12 {
		t.Errorf("clamped draw = %d, want 12", got)
	}
}

func TestEventCoversAttributes(t *testing.T) {
	p := Params{NumSubscriptions: 100, PredsPerSub: 8}
	rng := rand.New(rand.NewSource(1))
	ev := p.Event(rng)
	if ev.Len() != 4 {
		t.Errorf("event attrs = %d, want 4", ev.Len())
	}
	for k := 0; k < 4; k++ {
		if !ev.Has(Attr(k)) {
			t.Errorf("missing attribute %s", Attr(k))
		}
	}
}

func TestTableRendering(t *testing.T) {
	p := Params{NumSubscriptions: 2000, PredsPerSub: 10, FulfilledPerEvent: 5000}
	s := p.Table()
	for _, want := range []string{"2000", "10", "32", "5", "AND, OR", "5000"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table missing %q:\n%s", want, s)
		}
	}
}
