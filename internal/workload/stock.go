package workload

import (
	"math/rand"

	"noncanon/internal/boolexpr"
	"noncanon/internal/event"
	"noncanon/internal/predicate"
)

// StockSymbols is the shared symbol universe of the stock-ticker demo
// workload used by the overlay commands and examples.
var StockSymbols = []string{"ACME", "GLOBEX", "INITECH", "UMBRELLA"}

// StockSub draws one stock-ticker subscription: interest in a price band
// of one of the symbols,
//
//	sym = S and (price < lo or price > lo+20).
//
// It is the overlay demo workload — deliberately overlap-heavy so that
// covering has something to prune, unlike the paper workload (Params),
// whose predicates are unique by construction.
func StockSub(rng *rand.Rand) boolexpr.Expr {
	sym := StockSymbols[rng.Intn(len(StockSymbols))]
	lo := rng.Intn(80)
	return boolexpr.NewAnd(
		boolexpr.Pred("sym", predicate.Eq, sym),
		boolexpr.NewOr(
			boolexpr.Pred("price", predicate.Lt, lo),
			boolexpr.Pred("price", predicate.Gt, lo+20),
		),
	)
}

// StockEvent draws one stock-ticker event carrying the publication
// sequence number, matching the StockSub attribute vocabulary.
func StockEvent(rng *rand.Rand, seq int) event.Event {
	return event.New().
		Set("sym", StockSymbols[rng.Intn(len(StockSymbols))]).
		Set("price", rng.Intn(100)).
		Set("seq", seq)
}
