// Package workload generates the synthetic subscriptions, events and
// fulfilled-predicate draws of the paper's experiments (Table 1).
//
// Subscriptions are non-DNF Boolean expressions over unique predicates
// ("we avoid the usage of shared predicates … domains are supposed to have
// relatively large sizes and subscribers are interested in different
// events"). Each subscription with |p| predicates is an AND of |p|/2
// OR-pairs,
//
//	(p1 ∨ p2) ∧ (p3 ∨ p4) ∧ … ∧ (p|p|-1 ∨ p|p|),
//
// which the DNF transformation blows up into exactly 2^(|p|/2)
// conjunctions of |p|/2 predicates each — matching Table 1's "number of
// subscriptions per subscription after transformation: 8 to 32" for
// |p| ∈ {6, 8, 10}.
package workload

import (
	"fmt"
	"math/rand"
	"strconv"

	"noncanon/internal/boolexpr"
	"noncanon/internal/event"
	"noncanon/internal/predicate"
)

// Params mirrors the paper's Table 1.
type Params struct {
	// NumSubscriptions is the number of original subscriptions
	// (paper: 2,000 – 5,000,000).
	NumSubscriptions int
	// PredsPerSub is the number of unique predicates per original
	// subscription (paper: 6 to 10; must be even and ≥ 2).
	PredsPerSub int
	// FulfilledPerEvent is the number of fulfilled predicates per event
	// (paper: 5,000 – 10,000).
	FulfilledPerEvent int
	// Seed makes generation deterministic.
	Seed int64
}

// Validate reports parameter problems.
func (p Params) Validate() error {
	if p.NumSubscriptions <= 0 {
		return fmt.Errorf("workload: NumSubscriptions must be positive, got %d", p.NumSubscriptions)
	}
	if p.PredsPerSub < 2 || p.PredsPerSub%2 != 0 {
		return fmt.Errorf("workload: PredsPerSub must be even and >= 2, got %d", p.PredsPerSub)
	}
	if p.FulfilledPerEvent < 0 {
		return fmt.Errorf("workload: FulfilledPerEvent must be >= 0, got %d", p.FulfilledPerEvent)
	}
	return nil
}

// TransformedPerSub returns 2^(|p|/2), the number of conjunctive
// subscriptions each original subscription becomes after DNF transformation.
func (p Params) TransformedPerSub() int { return 1 << (p.PredsPerSub / 2) }

// PredsPerTransformed returns |p|/2, the predicates per transformed
// subscription.
func (p Params) PredsPerTransformed() int { return p.PredsPerSub / 2 }

// TotalPredicates returns the size of the unique-predicate universe.
func (p Params) TotalPredicates() int { return p.NumSubscriptions * p.PredsPerSub }

// Attr returns the attribute name of pair i; attributes are shared across
// subscriptions (pair i of every subscription filters attribute "ai") while
// predicates stay unique through per-subscription constants.
func Attr(i int) string { return "a" + strconv.Itoa(i) }

// Sub deterministically generates subscription i (0-based) as an AND of
// OR-pairs with globally unique predicates:
//
//	pair k of subscription i:  (a_k > base ∨ a_k <= base-gap)
//
// where base is unique per (i, k). The operand spacing keeps every
// predicate distinct without sharing.
func (p Params) Sub(i int) boolexpr.Expr {
	pairs := p.PredsPerSub / 2
	xs := make([]boolexpr.Expr, pairs)
	for k := 0; k < pairs; k++ {
		// Unique, deterministic constants: stride 4 per subscription leaves
		// room for the -1 offset without colliding with neighbours.
		base := int64(i)*4 + 1
		xs[k] = boolexpr.NewOr(
			boolexpr.Pred(Attr(k), predicate.Gt, base),
			boolexpr.Pred(Attr(k), predicate.Le, base-1),
		)
	}
	return boolexpr.NewAnd(xs...)
}

// Event generates a random event over the workload's attributes, for
// full-pipeline (phase 1 + 2) runs. Values are drawn uniformly over the
// subscription constant range, so selectivity scales with NumSubscriptions.
func (p Params) Event(rng *rand.Rand) event.Event {
	ev := event.New()
	for k := 0; k < p.PredsPerSub/2; k++ {
		ev = ev.Set(Attr(k), rng.Int63n(int64(p.NumSubscriptions)*4+2))
	}
	return ev
}

// FulfilledDraw samples FulfilledPerEvent distinct predicate IDs uniformly
// from the universe [1, TotalPredicates]. The IDs are valid for engines
// that registered subscriptions 0..NumSubscriptions-1 against a fresh
// shared registry: generation order makes registry IDs dense and
// deterministic.
//
// The draw is the phase-two input of the Fig. 3 experiments: matching times
// are measured for a given number of fulfilled predicates per event.
func (p Params) FulfilledDraw(rng *rand.Rand) []predicate.ID {
	n := p.TotalPredicates()
	k := p.FulfilledPerEvent
	if k > n {
		k = n
	}
	out := make([]predicate.ID, 0, k)
	seen := make(map[predicate.ID]struct{}, k)
	for len(out) < k {
		id := predicate.ID(rng.Int63n(int64(n)) + 1)
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return out
}

// Table renders the Table 1 row set for these parameters.
func (p Params) Table() string {
	return fmt.Sprintf(
		"Number of subscriptions                 %d\n"+
			"Original (unique) predicates per sub    %d\n"+
			"Subscriptions per sub after transform   %d\n"+
			"Predicates per transformed sub          %d\n"+
			"Used Boolean operators                  AND, OR\n"+
			"Matching predicates per event           %d\n",
		p.NumSubscriptions, p.PredsPerSub, p.TransformedPerSub(),
		p.PredsPerTransformed(), p.FulfilledPerEvent)
}
