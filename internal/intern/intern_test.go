package intern

import (
	"fmt"
	"sync"
	"testing"
)

func TestOfLookupRoundTrip(t *testing.T) {
	s := Of("intern-test-price")
	if s == None {
		t.Fatal("Of returned None")
	}
	if again := Of("intern-test-price"); again != s {
		t.Fatalf("Of not idempotent: %d then %d", s, again)
	}
	got, ok := Lookup("intern-test-price")
	if !ok || got != s {
		t.Fatalf("Lookup = %d,%v want %d,true", got, ok, s)
	}
	if name := Name(s); name != "intern-test-price" {
		t.Fatalf("Name(%d) = %q", s, name)
	}
}

func TestLookupNeverInserts(t *testing.T) {
	before := Len()
	if s, ok := Lookup("intern-test-never-interned"); ok || s != None {
		t.Fatalf("Lookup invented a symbol: %d,%v", s, ok)
	}
	if s, ok := LookupBytes([]byte("intern-test-never-interned-2")); ok || s != None {
		t.Fatalf("LookupBytes invented a symbol: %d,%v", s, ok)
	}
	if after := Len(); after != before {
		t.Fatalf("lookup grew the table: %d -> %d", before, after)
	}
}

func TestLookupBytesMatchesOf(t *testing.T) {
	s := Of("intern-test-bytes")
	got, ok := LookupBytes([]byte("intern-test-bytes"))
	if !ok || got != s {
		t.Fatalf("LookupBytes = %d,%v want %d,true", got, ok, s)
	}
}

func TestNameUnknown(t *testing.T) {
	if Name(None) != "" {
		t.Error("Name(None) must be empty")
	}
	if Name(Sym(1<<31)) != "" {
		t.Error("Name of an unissued symbol must be empty")
	}
}

// TestDistinctSymbols pushes enough inserts through to cross several
// promotions and checks density and bijectivity.
func TestDistinctSymbols(t *testing.T) {
	seen := make(map[Sym]string)
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("intern-test-dense-%d", i)
		s := Of(name)
		if prev, dup := seen[s]; dup {
			t.Fatalf("symbol %d handed to both %q and %q", s, prev, name)
		}
		seen[s] = name
	}
	for s, name := range seen {
		if Name(s) != name {
			t.Fatalf("Name(%d) = %q, want %q", s, Name(s), name)
		}
		if got, ok := Lookup(name); !ok || got != s {
			t.Fatalf("Lookup(%q) = %d,%v want %d", name, got, ok, s)
		}
	}
}

// TestConcurrentInternStress hammers Of/Lookup/Name from many goroutines;
// run under -race this checks the promotion dance publishes safely, and in
// any mode it checks symbols stay stable across promotions.
func TestConcurrentInternStress(t *testing.T) {
	const workers = 8
	const names = 64
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			syms := make(map[string]Sym, names)
			for round := 0; round < 50; round++ {
				for i := 0; i < names; i++ {
					name := fmt.Sprintf("intern-test-conc-%d", i)
					s := Of(name)
					if prev, ok := syms[name]; ok && prev != s {
						errs <- fmt.Sprintf("symbol for %q moved: %d -> %d", name, prev, s)
						return
					}
					syms[name] = s
					if got, ok := Lookup(name); !ok || got != s {
						errs <- fmt.Sprintf("Lookup(%q) = %d,%v want %d (interned earlier in this goroutine)", name, got, ok, s)
						return
					}
					if Name(s) != name {
						errs <- fmt.Sprintf("Name(%d) = %q want %q", s, Name(s), name)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
