// Package intern implements the process-wide symbol table for event
// attribute names: a concurrent, insert-only map from name to a dense
// numeric symbol. Interning turns every name comparison on the matching
// spine — phase-one index dispatch, predicate evaluation, event equality —
// into a 32-bit integer compare instead of string hashing.
//
// The table is deliberately asymmetric about who may grow it:
//
//   - Of inserts. It is called where subscriptions are registered
//     (predicate construction, index insertion) and by local event
//     construction (event.Set), so the table's size is bounded by the
//     local subscription and publication vocabulary.
//   - Lookup and LookupBytes never insert. The wire decoder resolves
//     attribute names through them exclusively, so a hostile remote peer
//     streaming fabricated names cannot grow the table — unknown names
//     ride through the system as plain strings with symbol None and fall
//     back to name comparison where it matters.
//
// Concurrency: reads are lock-free against an immutable snapshot behind an
// atomic pointer. Inserts go to a mutex-guarded dirty overlay which is
// promoted (merged into a fresh snapshot) once it has grown proportionally
// to the snapshot or once enough reads have had to take the slow path, the
// amortisation scheme of sync.Map specialised to an insert-only table with
// dense IDs. Symbols are never reused or reclaimed; a symbol, once handed
// out, names the same string for the life of the process.
package intern

import (
	"sync"
	"sync/atomic"
)

// Sym is an interned attribute name. The zero value None means "not
// interned": consumers must treat it as "compare by name", never as a
// table index. Symbols are dense, starting at 1.
type Sym uint32

// None is the Sym of a name that has not been interned (or a value that
// was constructed without consulting the table).
const None Sym = 0

// snapshot is the immutable read view: byName resolves names, names[s-1]
// is the name of Sym s.
type snapshot struct {
	byName map[string]Sym
	names  []string
}

var (
	mu         sync.Mutex // guards dirty, dirtyNames, misses and promotion
	clean      atomic.Pointer[snapshot]
	dirty      map[string]Sym // inserts since the last promotion
	dirtyNames []string       // dirty's names in insertion (= Sym) order
	hasDirty   atomic.Bool    // lets read misses skip the lock when clean is complete
	misses     int            // slow-path hits since the last promotion
)

func init() {
	clean.Store(&snapshot{byName: map[string]Sym{}})
}

// Of returns the symbol for name, interning it on first use. Safe for
// concurrent use; the fast path (name already promoted) is one atomic load
// and one map probe.
func Of(name string) Sym {
	if s, ok := clean.Load().byName[name]; ok {
		return s
	}
	mu.Lock()
	defer mu.Unlock()
	snap := clean.Load()
	if s, ok := snap.byName[name]; ok {
		return s
	}
	if s, ok := dirty[name]; ok {
		// A hot name stuck in the overlay costs every caller this lock;
		// count it toward promotion like a read miss.
		misses++
		if misses >= len(dirtyNames) {
			promoteLocked(snap)
		}
		return s
	}
	if dirty == nil {
		dirty = make(map[string]Sym, 8)
	}
	s := Sym(len(snap.names) + len(dirtyNames) + 1)
	dirty[name] = s
	dirtyNames = append(dirtyNames, name)
	hasDirty.Store(true)
	// Promote once the overlay rivals the snapshot (amortised O(1) per
	// insert: a promotion copying n entries is paid for by ~n inserts).
	if len(dirtyNames) >= 16 && len(dirtyNames) >= len(snap.names) {
		promoteLocked(snap)
	}
	return s
}

// Lookup returns the symbol for name without interning it. This is the
// wire decoder's resolver: remote input can never grow the table.
func Lookup(name string) (Sym, bool) {
	if s, ok := clean.Load().byName[name]; ok {
		return s, true
	}
	if !hasDirty.Load() {
		// A promotion may have drained the overlay between our two loads;
		// promotion publishes the snapshot before clearing the flag, so one
		// clean re-read closes the window.
		s, ok := clean.Load().byName[name]
		return s, ok
	}
	return lookupSlow(name)
}

// LookupBytes is Lookup for a byte-slice key, letting the wire decoder
// probe the table straight out of the frame buffer. The string conversion
// in the map index expression does not allocate (compiler-recognised
// pattern), so a hit costs no copy at all.
func LookupBytes(b []byte) (Sym, bool) {
	if s, ok := clean.Load().byName[string(b)]; ok {
		return s, true
	}
	if !hasDirty.Load() {
		s, ok := clean.Load().byName[string(b)]
		return s, ok
	}
	return lookupSlow(string(b))
}

func lookupSlow(name string) (Sym, bool) {
	mu.Lock()
	defer mu.Unlock()
	snap := clean.Load()
	if s, ok := snap.byName[name]; ok {
		return s, true
	}
	s, ok := dirty[name]
	if ok {
		misses++
		if misses >= len(dirtyNames) {
			promoteLocked(snap)
		}
	}
	return s, ok
}

// Name returns the string a symbol names, or "" for None and symbols never
// handed out. The returned string is the table's canonical copy: it stays
// reachable for the life of the process, so holding it never pins a
// transient buffer.
func Name(s Sym) string {
	if s == None {
		return ""
	}
	snap := clean.Load()
	if int(s) <= len(snap.names) {
		return snap.names[s-1]
	}
	mu.Lock()
	defer mu.Unlock()
	snap = clean.Load()
	if int(s) <= len(snap.names) {
		return snap.names[s-1]
	}
	if i := int(s) - len(snap.names) - 1; i < len(dirtyNames) {
		return dirtyNames[i]
	}
	return ""
}

// Len returns the number of interned names.
func Len() int {
	mu.Lock()
	defer mu.Unlock()
	return len(clean.Load().names) + len(dirtyNames)
}

// promoteLocked merges the overlay into a fresh snapshot. Caller holds mu.
// Order matters for lock-free readers: the new snapshot is published
// before hasDirty clears, so a reader that observes the flag down is
// guaranteed to find every promoted name in its next clean load.
func promoteLocked(snap *snapshot) {
	ns := &snapshot{
		byName: make(map[string]Sym, len(snap.byName)+len(dirty)),
		names:  make([]string, 0, len(snap.names)+len(dirtyNames)),
	}
	for k, v := range snap.byName {
		ns.byName[k] = v
	}
	ns.names = append(ns.names, snap.names...)
	for k, v := range dirty {
		ns.byName[k] = v
	}
	ns.names = append(ns.names, dirtyNames...)
	clean.Store(ns)
	dirty, dirtyNames, misses = nil, nil, 0
	hasDirty.Store(false)
}
