//go:build race

package netoverlay

// settleRaceFactor widens the tests' Settle windows under the race
// detector: instrumentation plus a parallel full-suite run can starve a
// peer's reader goroutine long enough that frames sit invisible in a TCP
// socket buffer past the normal window, declaring quiescence with events
// still in flight.
const settleRaceFactor = 4
