package netoverlay

import (
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"noncanon/internal/obs"
	"noncanon/internal/router"
	"noncanon/internal/sublang"
	"noncanon/internal/wire"
)

// peerInstrument builds a per-peer instrument name with the peer's node ID
// as an embedded label, e.g. netoverlay_peer_queue_bytes{peer="3"}.
func peerInstrument(family string, nodeID uint32) string {
	return family + `{peer="` + strconv.FormatUint(uint64(nodeID), 10) + `"}`
}

// peer is one live broker-to-broker TCP link.
type peer struct {
	b      *Broker
	nc     net.Conn
	nodeID uint32
	link   int // router link index, assigned at attach

	// out is the spill queue the broker goroutine pushes forwards into;
	// writeLoop drains it onto the connection. Flow-controlled: routing
	// never blocks on this peer's pace, and a slow peer sheds events once
	// its byte credit runs out instead of growing the queue without bound.
	out *router.Queue[router.Msg]

	// wmu serializes frame writes between writeLoop and pingLoop.
	wmu sync.Mutex

	// fwd counts event frames written to this peer
	// (netoverlay_peer_forwarded_total{peer="N"}; survives detach so a
	// relinking peer keeps its history).
	fwd *obs.Counter

	// done closes when the link tears down (detach or shutdown), stopping
	// the ping loop.
	done chan struct{}

	closeOnce sync.Once
}

// handshake runs the hello exchange: the dialer speaks first, the acceptor
// answers. Both directions carry the protocol version and the sender's
// node ID. Returns the peer's node ID.
func (b *Broker) handshake(nc net.Conn, dialer bool) (uint32, error) {
	deadline := time.Now().Add(handshakeTimeout)
	nc.SetDeadline(deadline)
	defer nc.SetDeadline(time.Time{})

	sendHello := func() error {
		return wire.WriteFrame(nc, wire.MsgHello, wire.AppendHello(nil, wire.FederationVersion, b.opts.NodeID))
	}
	recvHello := func() (uint32, error) {
		typ, payload, err := wire.ReadFrame(nc)
		if err != nil {
			return 0, fmt.Errorf("%w: %v", ErrHandshake, err)
		}
		if typ != wire.MsgHello {
			return 0, fmt.Errorf("%w: unexpected frame type 0x%02x", ErrHandshake, typ)
		}
		ver, peerID, err := wire.ReadHello(payload)
		if err != nil {
			return 0, fmt.Errorf("%w: %v", ErrHandshake, err)
		}
		if ver != wire.FederationVersion {
			return 0, fmt.Errorf("%w: protocol version %d, want %d", ErrHandshake, ver, wire.FederationVersion)
		}
		if peerID == b.opts.NodeID {
			return 0, fmt.Errorf("%w: peer claims our own node ID %d (self-link?)", ErrHandshake, peerID)
		}
		return peerID, nil
	}

	if dialer {
		if err := sendHello(); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrHandshake, err)
		}
		return recvHello()
	}
	peerID, err := recvHello()
	if err != nil {
		return 0, err
	}
	if err := sendHello(); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	return peerID, nil
}

// attach registers a handshaken connection as a live link: it claims the
// peer's node ID (vetoing duplicate links), asks the broker goroutine for a
// router link, starts the reader and writer and floods existing routes over
// the fresh link. Blocks until the link is live.
func (b *Broker) attach(nc net.Conn, peerID uint32) error {
	p := &peer{
		b:      b,
		nc:     nc,
		nodeID: peerID,
		out:    router.NewFlowQueue(router.EstimateMsgBytes, b.opts.LinkHighWater, b.opts.LinkLowWater),
		done:   make(chan struct{}),
	}
	b.mu.Lock()
	delete(b.pending, nc)
	if b.closed.Load() {
		b.mu.Unlock()
		nc.Close()
		return ErrClosed
	}
	if _, dup := b.peers[peerID]; dup {
		b.mu.Unlock()
		nc.Close()
		return fmt.Errorf("%w: already linked to node %d (duplicate link would close a cycle)", ErrHandshake, peerID)
	}
	b.peers[peerID] = p
	b.mu.Unlock()

	// Per-peer instruments. The counter is get-or-create: a peer that
	// detaches and relinks resumes its own series. The function
	// instruments are views over this link's spill queue; registering
	// again replaces a stale closure left by a previous incarnation, and
	// detach removes them.
	p.fwd = b.reg.Counter(peerInstrument("netoverlay_peer_forwarded_total", peerID))
	b.reg.GaugeFunc(peerInstrument("netoverlay_peer_queue_bytes", peerID), func() int64 {
		return int64(p.out.Stats().Bytes)
	})
	b.reg.CounterFunc(peerInstrument("netoverlay_peer_shed_total", peerID), func() uint64 {
		return p.out.Stats().Shed
	})

	attached := make(chan struct{})
	ok := b.enqueue(inMsg{ctl: func() {
		p.link = b.rt.AddLink()
		b.links = append(b.links, p)
		b.wg.Add(2)
		go p.readLoop()
		go p.writeLoop()
		if b.opts.PingInterval > 0 {
			b.wg.Add(1)
			go p.pingLoop()
		}
		b.rt.SyncLink(p.link)
		close(attached)
	}})
	if !ok {
		b.mu.Lock()
		delete(b.peers, peerID)
		b.mu.Unlock()
		nc.Close()
		return ErrClosed
	}
	select {
	case <-attached:
		b.opts.Logf("netoverlay: node %d: linked to node %d (%s)", b.opts.NodeID, peerID, nc.RemoteAddr())
		return nil
	case <-b.quit:
		return ErrClosed
	}
}

// detach tears the link down: the connection and queue close, and the
// broker goroutine retracts every route learned through it so the rest of
// the federation stops routing events this way.
func (p *peer) detach(reason error) {
	p.closeOnce.Do(func() {
		close(p.done)
		p.nc.Close()
		qs := p.out.Stats()
		p.out.Close()
		p.b.mu.Lock()
		delete(p.b.peers, p.nodeID)
		// Fold the dead queue's cumulative counters into the broker so
		// Stats stays monotonic across detaches.
		p.b.detachedShed += qs.Shed
		p.b.detachedSpilled += qs.SpilledBytes
		p.b.mu.Unlock()
		// Drop the per-peer queue views: their closures watch a queue that
		// just died. The plain counters (forwarded, evicted) stay — they
		// are history, and Stats keeps counting what this link shed via
		// detachedShed above.
		p.b.reg.Unregister(peerInstrument("netoverlay_peer_queue_bytes", p.nodeID))
		p.b.reg.Unregister(peerInstrument("netoverlay_peer_shed_total", p.nodeID))
		if reason != nil {
			p.b.opts.Logf("netoverlay: node %d: peer %d detached: %v", p.b.opts.NodeID, p.nodeID, reason)
		}
		// Route retraction must run on the broker goroutine; skip it when
		// the whole broker is going down anyway — Close is already tearing
		// the routing table down, and the enqueue would race with it.
		if !p.b.closed.Load() {
			p.b.enqueue(inMsg{ctl: func() {
				p.b.links[p.link] = nil
				p.b.rt.RemoveLink(p.link)
			}})
		}
	})
}

// shutdown closes the link without the route retraction dance; Close uses
// it when the whole broker is stopping.
func (p *peer) shutdown() {
	p.closeOnce.Do(func() {
		close(p.done)
		p.nc.Close()
		p.out.Close()
	})
}

// readLoop decodes inbound frames into broker-inbox messages. Blocking on a
// full inbox is harmless: this goroutine serves only this link, and the
// broker goroutine (which drains the inbox) never waits on it.
func (p *peer) readLoop() {
	defer p.b.wg.Done()
	var buf []byte // reused frame buffer; payloads below alias it
	for {
		// A half-open peer (no FIN — machine death, pulled cable, frozen
		// proxy) never errors a plain read. The idle deadline turns that
		// silence into a detach so its learned routes get retracted;
		// pingLoop traffic keeps a live-but-quiet peer under the deadline.
		if p.b.opts.ReadIdleTimeout > 0 {
			p.nc.SetReadDeadline(time.Now().Add(p.b.opts.ReadIdleTimeout))
		}
		typ, payload, bufOut, err := wire.ReadFrameInto(p.nc, buf)
		buf = bufOut
		if err != nil {
			p.detach(err)
			return
		}
		switch typ {
		case wire.MsgSubForward:
			subID, filter, err := wire.ReadSubForward(payload)
			if err != nil {
				p.detach(err)
				return
			}
			expr, err := sublang.Parse(filter)
			if err != nil {
				// A filter we cannot parse would silently black-hole a
				// subscriber; count it loudly and keep the link (the peer's
				// other traffic is fine).
				p.b.anomaly(fmt.Errorf("netoverlay: unparseable filter from node %d for sub %d: %w", p.nodeID, subID, err))
				continue
			}
			if !p.b.enqueue(inMsg{m: router.Msg{Kind: router.Sub, SubID: subID, Expr: expr}, from: p.link}) {
				return
			}
		case wire.MsgUnsubForward:
			subID, err := wire.ReadUnsubForward(payload)
			if err != nil {
				p.detach(err)
				return
			}
			if !p.b.enqueue(inMsg{m: router.Msg{Kind: router.Unsub, SubID: subID}, from: p.link}) {
				return
			}
		case wire.MsgEventForward:
			// Alias decode saves the per-attribute copies, then Retain pays
			// for only the volatile strings before the event crosses into
			// the broker inbox — an asynchronous hand-off that outlives
			// this loop's frame buffer.
			hops, ev, traceID, originNanos, err := wire.ReadEventForwardTraceAlias(payload)
			if err != nil {
				p.detach(err)
				return
			}
			m := router.Msg{Kind: router.Event, Ev: ev.Retain(), Hops: int(hops)}
			if traceID != 0 {
				// A sampled event: record this hop (latency is arrival
				// minus the origin stamp — one-way, so it includes clock
				// offset between machines; on one machine it is honest) and
				// keep the trace on the message so any further forward
				// carries it to the next broker.
				now := time.Now().UnixNano()
				p.b.hopLatency.Observe(time.Duration(now - originNanos))
				p.b.ring.Record(obs.TraceRecord{
					TraceID:      traceID,
					Node:         p.b.nodeName,
					Hops:         int(hops),
					OriginNanos:  originNanos,
					ArrivalNanos: now,
					LatencyNanos: now - originNanos,
				})
				m.Trace = router.Trace{ID: traceID, OriginNanos: originNanos}
			}
			if !p.b.enqueue(inMsg{m: m, from: p.link}) {
				return
			}
		case wire.MsgPing:
			// Tolerated for liveness probes; no reply needed on peer links.
		default:
			p.detach(fmt.Errorf("netoverlay: unexpected frame type 0x%02x from node %d", typ, p.nodeID))
			return
		}
	}
}

// writeLoop drains the spill queue onto the connection, one frame per
// routing message.
func (p *peer) writeLoop() {
	defer p.b.wg.Done()
	var buf []byte
	for {
		m, ok := p.out.Pop()
		if !ok {
			return
		}
		buf = buf[:0]
		var typ byte
		switch m.Kind {
		case router.Sub:
			typ = wire.MsgSubForward
			buf = wire.AppendSubForward(buf, m.SubID, m.Expr.String())
		case router.Unsub:
			typ = wire.MsgUnsubForward
			buf = wire.AppendUnsubForward(buf, m.SubID)
		case router.Event:
			typ = wire.MsgEventForward
			// Untraced events (Trace.ID zero) encode byte-identically to
			// the pre-trace format, so old peers decode them unchanged.
			buf = wire.AppendEventForwardTrace(buf, uint8(m.Hops), m.Ev, m.Trace.ID, m.Trace.OriginNanos)
			p.fwd.Inc()
		default:
			continue
		}
		if err := p.writeFrame(typ, buf); err != nil {
			p.detach(err)
			return
		}
		p.b.activity.Add(1)
	}
}

// writeFrame sends one frame under the write mutex, serializing writeLoop
// and pingLoop on the shared connection.
func (p *peer) writeFrame(typ byte, payload []byte) error {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	p.nc.SetWriteDeadline(time.Now().Add(writeTimeout))
	return wire.WriteFrame(p.nc, typ, payload)
}

// pingLoop keeps the link's read traffic flowing both ways: each side's
// periodic ping resets the other side's idle-read deadline, so only a peer
// that is actually unreachable trips it.
func (p *peer) pingLoop() {
	defer p.b.wg.Done()
	t := time.NewTicker(p.b.opts.PingInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := p.writeFrame(wire.MsgPing, nil); err != nil {
				p.detach(fmt.Errorf("netoverlay: ping to node %d failed: %w", p.nodeID, err))
				return
			}
		case <-p.done:
			return
		}
	}
}
