//go:build !race

package netoverlay

// settleRaceFactor is 1 on uninstrumented builds; see settle_race_test.go.
const settleRaceFactor = 1
