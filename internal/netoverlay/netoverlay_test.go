package netoverlay

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"noncanon/internal/boolexpr"
	"noncanon/internal/event"
	"noncanon/internal/obs"
	"noncanon/internal/overlay"
	"noncanon/internal/predicate"
	"noncanon/internal/wire"
)

// settleIdle is the quiet window tests hand to Settle. Settle cannot see
// bytes buffered inside a TCP socket, so the window must exceed the worst
// reader-goroutine starvation the host inflicts; race-instrumented builds
// (see settle_race_test.go) are slow enough under a parallel full-suite
// run to starve a reader past 75 ms.
const settleIdle = 75 * time.Millisecond * settleRaceFactor

func band(c, hi int) boolexpr.Expr {
	return boolexpr.NewAnd(
		boolexpr.Pred("cat", predicate.Eq, int64(c)),
		boolexpr.Pred("price", predicate.Lt, int64(hi)),
	)
}

func bandEvent(c, price int) event.Event {
	return event.New().Set("cat", int64(c)).Set("price", int64(price))
}

// startBroker brings one broker up on a loopback listener.
func startBroker(t *testing.T, id uint32, coverOn bool) *Broker {
	t.Helper()
	b := NewBroker(Options{NodeID: id, Cover: coverOn, Logf: t.Logf})
	if _, err := b.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

// buildTree federates n brokers as a complete binary tree over loopback
// TCP: broker i connects to broker (i-1)/2.
func buildTree(t *testing.T, n int, coverOn bool) []*Broker {
	t.Helper()
	brokers := make([]*Broker, n)
	for i := range brokers {
		brokers[i] = startBroker(t, uint32(i+1), coverOn)
	}
	for i := 1; i < n; i++ {
		parent := brokers[(i-1)/2]
		if err := brokers[i].Connect(parent.Addr().String()); err != nil {
			t.Fatalf("connect %d -> %d: %v", i, (i-1)/2, err)
		}
	}
	return brokers
}

func waitNumGoroutine(want int, deadline time.Duration) int {
	var n int
	for end := time.Now().Add(deadline); time.Now().Before(end); {
		n = runtime.NumGoroutine()
		if n <= want {
			return n
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	return n
}

// TestFederatedExactlyOnce runs three brokers in a line over loopback TCP
// and asserts every matching subscriber sees every event exactly once, from
// every publish origin — and that covering actually prunes the flood.
func TestFederatedExactlyOnce(t *testing.T) {
	for _, coverOn := range []bool{false, true} {
		name := "plain"
		if coverOn {
			name = "cover"
		}
		t.Run(name, func(t *testing.T) {
			// Line 0-1-2 (buildTree with n=3 gives 1-0-2, a line too, but be
			// explicit about the shape).
			brokers := []*Broker{
				startBroker(t, 1, coverOn),
				startBroker(t, 2, coverOn),
				startBroker(t, 3, coverOn),
			}
			if err := brokers[1].Connect(brokers[0].Addr().String()); err != nil {
				t.Fatal(err)
			}
			if err := brokers[2].Connect(brokers[1].Addr().String()); err != nil {
				t.Fatal(err)
			}

			type rec struct {
				mu   sync.Mutex
				seen map[int64]int
			}
			newRec := func() *rec { return &rec{seen: map[int64]int{}} }
			recs := map[string]*rec{}
			sub := func(b *Broker, tag string, f boolexpr.Expr) {
				r := newRec()
				recs[tag] = r
				if _, err := b.Subscribe(f, func(ev event.Event) {
					v, _ := ev.Get("seq")
					r.mu.Lock()
					r.seen[v.Int()]++
					r.mu.Unlock()
				}); err != nil {
					t.Fatal(err)
				}
			}
			// Wide and narrow filters at the far end, another wide at the
			// middle: nested bands give covering something to prune.
			sub(brokers[0], "wide@0", band(1, 100))
			sub(brokers[0], "narrow@0", band(1, 10))
			sub(brokers[1], "wide@1", band(1, 100))
			sub(brokers[2], "narrow@2", band(1, 10))
			Settle(settleIdle, brokers...)

			seq := int64(0)
			for origin := 0; origin < 3; origin++ {
				for _, price := range []int{5, 50, 500} {
					seq++
					if err := brokers[origin].Publish(bandEvent(1, price).Set("seq", seq)); err != nil {
						t.Fatal(err)
					}
				}
			}
			Settle(settleIdle, brokers...)

			// price 5 (3 events) matches everything; price 50 (3) only the
			// wide filters; price 500 (3) nothing.
			want := map[string][]int64{
				"wide@0":   {1, 2, 4, 5, 7, 8},
				"narrow@0": {1, 4, 7},
				"wide@1":   {1, 2, 4, 5, 7, 8},
				"narrow@2": {1, 4, 7},
			}
			for tag, r := range recs {
				r.mu.Lock()
				var got []int64
				for s, n := range r.seen {
					if n != 1 {
						t.Errorf("%s: event %d delivered %d times, want exactly once", tag, s, n)
					}
					got = append(got, s)
				}
				r.mu.Unlock()
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				if fmt.Sprint(got) != fmt.Sprint(want[tag]) {
					t.Errorf("%s: delivered %v, want %v", tag, got, want[tag])
				}
			}

			var totalSuppressed, totalHopDropped, totalAnomalies uint64
			for _, b := range brokers {
				st := b.Stats()
				totalSuppressed += st.CoverSuppressed
				totalHopDropped += st.HopDropped
				totalAnomalies += st.InstallErrors
			}
			if coverOn && totalSuppressed == 0 {
				t.Error("CoverSuppressed = 0 with nested filters; covering is not engaged")
			}
			if !coverOn && totalSuppressed != 0 {
				t.Errorf("CoverSuppressed = %d with covering off", totalSuppressed)
			}
			if totalHopDropped != 0 || totalAnomalies != 0 {
				t.Errorf("drops/anomalies: hops=%d installErrors=%d", totalHopDropped, totalAnomalies)
			}
		})
	}
}

// TestFederatedDifferentialVsOverlay drives a loopback-TCP federation and
// an in-process overlay of the same tree topology through one interleaved
// subscribe/unsubscribe/publish script (settling between phases so both see
// identical routing states) and requires identical (subscriber, event)
// delivery multisets — the federation is the simulation made real, not a
// different routing algorithm.
func TestFederatedDifferentialVsOverlay(t *testing.T) {
	for _, coverOn := range []bool{false, true} {
		name := "plain"
		if coverOn {
			name = "cover"
		}
		t.Run(name, func(t *testing.T) {
			const nodes = 7
			brokers := buildTree(t, nodes, coverOn)
			nw, err := overlay.NewTree(nodes, 2, overlay.Config{Cover: coverOn})
			if err != nil {
				t.Fatal(err)
			}
			defer nw.Close()

			type deliveries struct {
				mu   sync.Mutex
				seen map[string][]int64
			}
			record := func(d *deliveries, tag string) func(ev event.Event) {
				return func(ev event.Event) {
					v, _ := ev.Get("seq")
					d.mu.Lock()
					d.seen[tag] = append(d.seen[tag], v.Int())
					d.mu.Unlock()
				}
			}
			dNet := &deliveries{seen: map[string][]int64{}}
			dSim := &deliveries{seen: map[string][]int64{}}

			rng := rand.New(rand.NewSource(23))
			type pair struct {
				net SubRef
				sim overlay.SubRef
			}
			live := map[string]pair{}
			var tags []string
			seq := int64(0)

			for round := 0; round < 12; round++ {
				for i := 0; i < 10; i++ {
					if rng.Intn(3) < 2 || len(tags) == 0 {
						tag := fmt.Sprintf("r%dc%d", round, i)
						at := rng.Intn(nodes)
						f := band(rng.Intn(3), 10*(1+rng.Intn(10)))
						rn, err := brokers[at].Subscribe(f, record(dNet, tag))
						if err != nil {
							t.Fatal(err)
						}
						rs, err := nw.Subscribe(overlay.NodeID(at), f, record(dSim, tag))
						if err != nil {
							t.Fatal(err)
						}
						live[tag] = pair{net: rn, sim: rs}
						tags = append(tags, tag)
					} else {
						j := rng.Intn(len(tags))
						tag := tags[j]
						tags[j] = tags[len(tags)-1]
						tags = tags[:len(tags)-1]
						pr := live[tag]
						delete(live, tag)
						// The tag owner's broker is identified by the sub ID.
						if err := brokers[(pr.net.id>>32)-1].Unsubscribe(pr.net); err != nil {
							t.Fatal(err)
						}
						if err := nw.Unsubscribe(pr.sim); err != nil {
							t.Fatal(err)
						}
					}
				}
				Settle(settleIdle, brokers...)
				nw.Flush()

				for i := 0; i < 12; i++ {
					seq++
					ev := bandEvent(rng.Intn(3), rng.Intn(110)).Set("seq", seq)
					at := rng.Intn(nodes)
					if err := brokers[at].Publish(ev); err != nil {
						t.Fatal(err)
					}
					if err := nw.Publish(overlay.NodeID(at), ev); err != nil {
						t.Fatal(err)
					}
				}
				Settle(settleIdle, brokers...)
				nw.Flush()
			}

			snapshot := func(d *deliveries) map[string][]int64 {
				d.mu.Lock()
				defer d.mu.Unlock()
				out := make(map[string][]int64, len(d.seen))
				for k, v := range d.seen {
					s := append([]int64(nil), v...)
					sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
					out[k] = s
				}
				return out
			}
			got, want := snapshot(dNet), snapshot(dSim)
			if len(got) != len(want) {
				t.Fatalf("subscriber sets differ: federation %d, overlay %d", len(got), len(want))
			}
			for tag, ws := range want {
				gs := got[tag]
				if fmt.Sprint(gs) != fmt.Sprint(ws) {
					t.Fatalf("subscriber %s: federation delivered %v, overlay %v", tag, gs, ws)
				}
			}

			var netSuppressed uint64
			for _, b := range brokers {
				st := b.Stats()
				netSuppressed += st.CoverSuppressed
				if st.HopDropped != 0 || st.InstallErrors != 0 {
					t.Errorf("node %d: drops/anomalies %+v", b.NodeID(), st)
				}
			}
			if coverOn && netSuppressed == 0 {
				t.Error("federation never suppressed a flood under -cover")
			}
			t.Logf("federation CoverSuppressed = %d across %d brokers", netSuppressed, nodes)
		})
	}
}

// TestHandshakeValidation exercises the link vetoes: self node IDs, version
// mismatches, duplicate links.
func TestHandshakeValidation(t *testing.T) {
	b := startBroker(t, 7, false)

	// A peer claiming our own node ID is rejected.
	imp := NewBroker(Options{NodeID: 7})
	defer imp.Close()
	if err := imp.Connect(b.Addr().String()); !errors.Is(err, ErrHandshake) {
		t.Errorf("self-ID connect err = %v, want ErrHandshake", err)
	}

	// A wrong protocol version is rejected (raw frame, no Broker).
	nc, err := net.Dial("tcp", b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := wire.WriteFrame(nc, wire.MsgHello, wire.AppendHello(nil, wire.FederationVersion+1, 99)); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := wire.ReadFrame(nc); err == nil {
		t.Error("version-mismatch hello got a reply; want connection close")
	}

	// A second link to the same peer is refused by the dialer's own table.
	other := startBroker(t, 8, false)
	if err := other.Connect(b.Addr().String()); err != nil {
		t.Fatal(err)
	}
	if err := other.Connect(b.Addr().String()); !errors.Is(err, ErrHandshake) {
		t.Errorf("duplicate connect err = %v, want ErrHandshake", err)
	}

	// Subscribing with a non-wire-encodable filter fails synchronously.
	if _, err := b.Subscribe(nil, func(event.Event) {}); err == nil {
		t.Error("nil filter accepted")
	}
	if _, err := b.Subscribe(band(1, 10), nil); err == nil {
		t.Error("nil handler accepted")
	}

	// Unsubscribing a foreign or unknown ref fails.
	if err := b.Unsubscribe(SubRef{id: 12345}); !errors.Is(err, ErrUnknownSub) {
		t.Errorf("unknown unsubscribe err = %v", err)
	}
}

// TestPeerDisconnectRetractsRoutes kills the subscriber's broker and checks
// the survivors stop forwarding its way: the dead peer's routes are
// retracted network-wide instead of black-holing events.
func TestPeerDisconnectRetractsRoutes(t *testing.T) {
	brokers := buildTree(t, 3, false) // 0 is hub, 1 and 2 leaves
	if _, err := brokers[2].Subscribe(band(1, 100), func(event.Event) {}); err != nil {
		t.Fatal(err)
	}
	Settle(settleIdle, brokers...)
	if before := brokers[0].Stats(); before.Peers != 2 {
		t.Fatalf("hub peers = %d, want 2", before.Peers)
	}

	brokers[2].Close()
	// The hub notices the dead link and retracts; give it a settle window.
	deadline := time.Now().Add(10 * time.Second)
	for brokers[0].Stats().Peers != 1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	Settle(settleIdle, brokers[0], brokers[1])

	before := brokers[0].Stats().Forwarded
	if err := brokers[0].Publish(bandEvent(1, 5)); err != nil {
		t.Fatal(err)
	}
	Settle(settleIdle, brokers[0], brokers[1])
	if after := brokers[0].Stats().Forwarded; after != before {
		t.Errorf("hub still forwarded %d copies toward the dead subscriber", after-before)
	}
}

// TestFederationGoroutineLeak closes a worked federation and requires the
// goroutine count to return to its pre-test level.
func TestFederationGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	brokers := buildTree(t, 5, true)
	var delivered sync.WaitGroup
	delivered.Add(1)
	var once sync.Once
	if _, err := brokers[4].Subscribe(band(1, 100), func(event.Event) {
		once.Do(delivered.Done)
	}); err != nil {
		t.Fatal(err)
	}
	Settle(settleIdle, brokers...)
	if err := brokers[0].Publish(bandEvent(1, 5)); err != nil {
		t.Fatal(err)
	}
	delivered.Wait()
	for _, b := range brokers {
		b.Close()
	}
	const slack = 2
	if n := waitNumGoroutine(before+slack, 10*time.Second); n > before+slack {
		buf := make([]byte, 1<<20)
		t.Errorf("goroutine leak: %d before, %d after close\n%s", before, n, buf[:runtime.Stack(buf, true)])
	}
}

// TestTracePropagationAcrossFederation runs a 3-broker line A—B—C with
// tracing on at A and a subscriber at C, and checks the trace machinery
// end to end: every sampled event leaves exactly one hop record at each
// broker it crossed (B at hop 1, C at hop 2, none at the origin), the
// records' timestamps are monotone along the path, and the hop-latency
// histograms fill only where hops were received.
func TestTracePropagationAcrossFederation(t *testing.T) {
	newTraced := func(id uint32, every int) *Broker {
		b := NewBroker(Options{NodeID: id, TraceSampleEvery: every, Logf: t.Logf})
		if _, err := b.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { b.Close() })
		return b
	}
	a, bb, c := newTraced(1, 2), newTraced(2, 0), newTraced(3, 0)
	if err := bb.Connect(a.Addr().String()); err != nil {
		t.Fatal(err)
	}
	if err := c.Connect(bb.Addr().String()); err != nil {
		t.Fatal(err)
	}
	var delivered atomic.Int64
	if _, err := c.Subscribe(boolexpr.Pred("n", predicate.Ge, int64(0)), func(event.Event) {
		delivered.Add(1)
	}); err != nil {
		t.Fatal(err)
	}
	Settle(settleIdle, a, bb, c)

	const events = 10 // TraceSampleEvery 2 → 5 traced
	for i := 0; i < events; i++ {
		if err := a.Publish(event.New().Set("n", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	Settle(settleIdle, a, bb, c)

	if delivered.Load() != events {
		t.Fatalf("delivered = %d, want %d", delivered.Load(), events)
	}
	const traced = events / 2
	// One hop record per forward: the middle and far brokers each saw
	// every traced event once; the origin records no hop of its own.
	if got := a.Traces().Recent(); len(got) != 0 {
		t.Errorf("origin broker recorded %d hop records, want 0: %+v", len(got), got)
	}
	hopsB, hopsC := bb.Traces().Recent(), c.Traces().Recent()
	if len(hopsB) != traced || len(hopsC) != traced {
		t.Fatalf("hop records B=%d C=%d, want %d each", len(hopsB), len(hopsC), traced)
	}
	byID := func(rs []obs.TraceRecord) map[uint64]obs.TraceRecord {
		m := make(map[uint64]obs.TraceRecord, len(rs))
		for _, r := range rs {
			if _, dup := m[r.TraceID]; dup {
				t.Errorf("trace %#x recorded twice at node %s", r.TraceID, r.Node)
			}
			m[r.TraceID] = r
		}
		return m
	}
	mb, mc := byID(hopsB), byID(hopsC)
	for id, rb := range mb {
		rc, ok := mc[id]
		if !ok {
			t.Errorf("trace %#x seen at B but not at C", id)
			continue
		}
		if rb.Node != "2" || rc.Node != "3" {
			t.Errorf("trace %#x nodes = %s,%s, want 2,3", id, rb.Node, rc.Node)
		}
		if rb.Hops != 1 || rc.Hops != 2 {
			t.Errorf("trace %#x hops = %d,%d, want 1,2", id, rb.Hops, rc.Hops)
		}
		if rb.OriginNanos != rc.OriginNanos {
			t.Errorf("trace %#x origin stamp changed in flight: %d vs %d", id, rb.OriginNanos, rc.OriginNanos)
		}
		// Monotone along the path: origin ≤ arrival at B ≤ arrival at C
		// (one machine, one clock).
		if rb.ArrivalNanos < rb.OriginNanos || rc.ArrivalNanos < rb.ArrivalNanos {
			t.Errorf("trace %#x timestamps not monotone: origin %d, B %d, C %d",
				id, rb.OriginNanos, rb.ArrivalNanos, rc.ArrivalNanos)
		}
	}
	// The hop-latency histogram fills exactly where hops were received.
	for _, probe := range []struct {
		name string
		b    *Broker
		want uint64
	}{{"A", a, 0}, {"B", bb, traced}, {"C", c, traced}} {
		s, ok := probe.b.Metrics().Get("netoverlay_hop_latency_seconds")
		if !ok {
			t.Fatalf("%s: hop latency histogram missing", probe.name)
		}
		if s.Hist.Count != probe.want {
			t.Errorf("%s: hop latency count = %d, want %d", probe.name, s.Hist.Count, probe.want)
		}
	}
	// Per-peer forwarded counters saw every event cross their link.
	for _, probe := range []struct {
		name string
		b    *Broker
		peer uint32
	}{{"A→B", a, 2}, {"B→C", bb, 3}} {
		s, ok := probe.b.Metrics().Get(peerInstrument("netoverlay_peer_forwarded_total", probe.peer))
		if !ok {
			t.Fatalf("%s: per-peer forwarded counter missing", probe.name)
		}
		if s.Value != events {
			t.Errorf("%s: forwarded = %d, want %d", probe.name, s.Value, events)
		}
	}
}
