// Package netoverlay federates brokers over real TCP: each process runs one
// Broker — a full non-canonical matching engine plus the internal/router
// routing core — and links to neighbouring brokers with the internal/wire
// framing (MsgHello handshake, MsgSubForward / MsgUnsubForward /
// MsgEventForward). N processes whose links form a tree become a
// covering-routed broker network: subscriptions flood (pruned by covering
// when Options.Cover is set), events follow reverse paths and reach every
// matching subscriber in the federation exactly once.
//
// The forwarding discipline is the same one that makes internal/overlay
// deadlock-free: the broker goroutine never blocks toward a peer. Outbound
// messages go to a per-peer flow-controlled spill queue drained by a writer
// goroutine; inbound frames are read by a per-peer reader that feeds the
// broker inbox. A congested or stalled peer therefore backs traffic up in
// its own direction only — it can never wedge this broker's loop, and it
// cannot OOM it either: the spill queue is byte-bounded by credit
// (Options.LinkHighWater). Past the high watermark the link sheds event
// traffic (counted in Stats.Shed) while subscription control traffic is
// never shed, a peer congested past Options.CongestionDeadline is evicted
// with full route retraction (Stats.Evicted), and a half-open peer that
// goes silent past Options.ReadIdleTimeout is detached the same way
// (periodic MsgPing probes keep healthy links audibly alive).
//
// Topology: brokers are identified by operator-assigned node IDs. The
// handshake rejects self-links, duplicate links to the same peer and
// protocol-version mismatches — the local anomalies every cycle must
// contain at least one of on a two-node loop — and a duplicate subscription
// flood (impossible on a tree) is surfaced through Options.OnError as a
// cycle warning. Keeping the global link set acyclic remains the
// deployment's contract, exactly as in SIENA-style broker networks.
package netoverlay

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"noncanon/internal/boolexpr"
	"noncanon/internal/core"
	"noncanon/internal/event"
	"noncanon/internal/index"
	"noncanon/internal/obs"
	"noncanon/internal/predicate"
	"noncanon/internal/router"
	"noncanon/internal/sublang"
	"noncanon/internal/subtree"
)

// Handler consumes events delivered to a local subscriber. Handlers run on
// the broker goroutine and must not block.
type Handler = router.Handler

// Errors returned by the broker API.
var (
	ErrClosed     = errors.New("netoverlay: broker closed")
	ErrUnknownSub = errors.New("netoverlay: unknown subscription")
	ErrHandshake  = errors.New("netoverlay: handshake failed")
)

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("netoverlay: server closed")

// DefaultInboxSize is the broker inbox capacity. As in internal/overlay,
// forwarding progress never depends on it.
const DefaultInboxSize = 1024

// traceRingSize is the capacity of the ring of recent hop records kept
// for sampled traced events (see Options.TraceSampleEvery and Traces).
const traceRingSize = 256

// writeTimeout bounds one frame write toward a peer; a peer stalled longer
// is detached (its learned routes are retracted network-wide).
const writeTimeout = 10 * time.Second

// handshakeTimeout bounds the hello exchange on a fresh connection.
const handshakeTimeout = 5 * time.Second

// Flow-control defaults; see the corresponding Options fields. Negative
// option values disable the mechanism, zero means the default.
const (
	// DefaultLinkHighWater is the per-peer spill-queue congestion
	// threshold in accounted bytes.
	DefaultLinkHighWater = 8 << 20
	// DefaultCongestionDeadline is how long a peer may stay congested
	// before it is evicted with route retraction.
	DefaultCongestionDeadline = 30 * time.Second
	// DefaultPingInterval is the liveness-probe cadence on peer links.
	DefaultPingInterval = 15 * time.Second
	// DefaultReadIdleTimeout is how long a peer link may stay silent
	// before it is treated as dead. It must comfortably exceed the ping
	// interval: a healthy peer's probes keep the link audibly alive.
	DefaultReadIdleTimeout = 60 * time.Second
)

// Options configures a federated broker.
type Options struct {
	// NodeID identifies this broker in the federation. Operators must
	// assign distinct IDs: subscription IDs embed the home broker's, and
	// the handshake can only veto the collisions it can see (self-links,
	// two links to the same peer).
	NodeID uint32
	// Cover enables covering-pruned subscription forwarding.
	Cover bool
	// Engine configures the local matching engine.
	Engine core.Options
	// Metrics is the registry this broker's instruments register in; nil
	// means a private registry (same atomic cost, reachable via Metrics()).
	// Give each broker its own registry: per-broker function instruments
	// (queue gauges, shed totals) are replaced, not summed, on collision.
	Metrics *obs.Registry
	// TraceSampleEvery turns on event tracing: every Nth local Publish is
	// stamped with a trace ID and origin timestamp that travel with the
	// event across every federation hop. Each receiving broker records the
	// hop into its netoverlay_hop_latency_seconds histogram and its trace
	// ring (see Traces). Zero disables tracing; untraced frames are
	// byte-identical to the pre-trace wire format, so traced and untraced
	// brokers interoperate freely.
	TraceSampleEvery int
	// InboxSize is the broker inbox capacity (default DefaultInboxSize).
	InboxSize int
	// LinkHighWater is the per-peer spill-queue congestion threshold in
	// accounted bytes (default DefaultLinkHighWater). A peer whose queue
	// reaches it stops receiving event traffic — events are shed and
	// counted (Stats.Shed) — until the queue drains below LinkLowWater.
	// Subscription control traffic is never shed.
	LinkHighWater int
	// LinkLowWater is the byte level a congested link must drain below to
	// regain credit (default LinkHighWater/2).
	LinkLowWater int
	// CongestionDeadline is how long a peer may stay continuously
	// congested before the broker evicts it, retracting every route
	// learned through it (default DefaultCongestionDeadline; negative
	// disables eviction).
	CongestionDeadline time.Duration
	// PingInterval is the cadence of MsgPing liveness probes on peer
	// links (default DefaultPingInterval; negative disables probing).
	PingInterval time.Duration
	// ReadIdleTimeout detaches a peer whose link stays silent this long —
	// the half-open TCP case where no FIN ever arrives (default
	// DefaultReadIdleTimeout; negative disables the idle check). Healthy
	// peers' pings keep the link active, so it should comfortably exceed
	// the peers' PingInterval.
	ReadIdleTimeout time.Duration
	// Logf receives connection-level diagnostics; nil silences them.
	Logf func(format string, args ...any)
	// OnError receives routing anomalies (unparseable forwarded filters,
	// install failures, duplicate floods that suggest a topology cycle).
	// Called on broker goroutines; must not block. Anomalies are also
	// counted in Stats.InstallErrors.
	OnError func(err error)
}

// SubRef names a local subscription.
type SubRef struct {
	id uint64
}

// Stats aggregates broker activity.
type Stats struct {
	// Published counts local Publish calls.
	Published uint64
	// Forwarded counts event copies sent to peers.
	Forwarded uint64
	// Delivered counts local handler invocations.
	Delivered uint64
	// SubscriptionMsgs counts subscription floods and retractions sent.
	SubscriptionMsgs uint64
	// CoverSuppressed counts forwards pruned by covering (Options.Cover).
	CoverSuppressed uint64
	// HopDropped counts events discarded at the hop limit; zero on trees.
	HopDropped uint64
	// InstallErrors counts routing anomalies (see Options.OnError).
	InstallErrors uint64
	// Shed counts events dropped at congested peer spill queues
	// (Options.LinkHighWater).
	Shed uint64
	// SpilledBytes is the cumulative accounted size of messages that went
	// through peer spill queues.
	SpilledBytes uint64
	// QueuedBytes is the accounted size currently sitting in peer spill
	// queues — bounded by LinkHighWater per link (plus control traffic).
	QueuedBytes uint64
	// Evicted counts peers detached for staying congested past
	// Options.CongestionDeadline.
	Evicted uint64
	// Peers is the live peer-link count.
	Peers int
}

// Broker is one federated broker process.
type Broker struct {
	opts Options

	quit   chan struct{}
	closed atomic.Bool
	wg     sync.WaitGroup
	inbox  chan inMsg

	// rt and links are owned by the run goroutine (control thunks included).
	rt    *router.Router
	eng   *core.Engine
	links []*peer // index = router link; nil once detached

	mu      sync.Mutex
	ln      net.Listener
	peers   map[uint32]*peer // by peer node ID
	pending map[net.Conn]struct{}
	// Cumulative queue accounting folded in when peers detach, so Stats
	// keeps counting what evicted links shed.
	detachedShed    uint64
	detachedSpilled uint64

	nextSub   atomic.Uint64
	localSubs sync.Map // sub id → struct{}, for Unsubscribe validation
	activity  atomic.Uint64
	traceSeq  atomic.Uint64

	// Observability: every counter below lives in reg (Options.Metrics or
	// a private registry), so Stats and the exposition endpoint read the
	// same instruments the hot path increments.
	reg           *obs.Registry
	ring          *obs.TraceRing
	nodeName      string // NodeID in decimal, precomputed for trace records
	published     *obs.Counter
	installErrors *obs.Counter
	evicted       *obs.Counter
	hopLatency    *obs.Histogram
}

// inMsg is one broker-inbox entry: either a routing message tagged with the
// link it arrived on (-1 = local API, which also carries the handler), or a
// control thunk to run on the broker goroutine.
type inMsg struct {
	m    router.Msg
	from int
	h    Handler
	ctl  func()
}

// NewBroker starts a federated broker (no links yet; see Serve/Connect).
func NewBroker(opts Options) *Broker {
	if opts.InboxSize <= 0 {
		opts.InboxSize = DefaultInboxSize
	}
	if opts.LinkHighWater <= 0 {
		opts.LinkHighWater = DefaultLinkHighWater
	}
	if opts.CongestionDeadline == 0 {
		opts.CongestionDeadline = DefaultCongestionDeadline
	}
	if opts.PingInterval == 0 {
		opts.PingInterval = DefaultPingInterval
	}
	if opts.ReadIdleTimeout == 0 {
		opts.ReadIdleTimeout = DefaultReadIdleTimeout
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	b := &Broker{
		opts:    opts,
		quit:    make(chan struct{}),
		inbox:   make(chan inMsg, opts.InboxSize),
		peers:   make(map[uint32]*peer),
		pending: make(map[net.Conn]struct{}),
	}
	b.reg = opts.Metrics
	if b.reg == nil {
		b.reg = obs.NewRegistry()
	}
	b.ring = obs.NewTraceRing(traceRingSize)
	b.nodeName = strconv.FormatUint(uint64(opts.NodeID), 10)
	// Causes register before effects: Snapshot reads instruments in
	// reverse registration order, so with published registered before the
	// router's forwarded/delivered counters a mid-storm snapshot can never
	// show more forwards than publishes.
	b.published = b.reg.Counter("netoverlay_published_total")
	b.installErrors = b.reg.Counter("netoverlay_install_errors_total")
	b.eng = core.New(predicate.NewRegistry(), index.New(), opts.Engine)
	b.rt = router.New(router.Config{
		Cover:     opts.Cover,
		Engine:    b.eng,
		Transport: (*brokerTransport)(b),
		Metrics:   b.reg,
	})
	b.evicted = b.reg.Counter("netoverlay_evicted_total")
	b.hopLatency = b.reg.Histogram("netoverlay_hop_latency_seconds")
	// Queue aggregates are function instruments over the live peer set
	// plus the totals folded in when peers detached. They take b.mu, which
	// is safe: Snapshot runs callbacks with no registry lock held, and
	// Stats does not hold b.mu while snapshotting.
	b.reg.CounterFunc("netoverlay_shed_total", func() uint64 {
		b.mu.Lock()
		defer b.mu.Unlock()
		s := b.detachedShed
		for _, p := range b.peers {
			s += p.out.Stats().Shed
		}
		return s
	})
	b.reg.CounterFunc("netoverlay_spilled_bytes_total", func() uint64 {
		b.mu.Lock()
		defer b.mu.Unlock()
		s := b.detachedSpilled
		for _, p := range b.peers {
			s += p.out.Stats().SpilledBytes
		}
		return s
	})
	b.reg.GaugeFunc("netoverlay_queue_bytes", func() int64 {
		b.mu.Lock()
		defer b.mu.Unlock()
		var s int64
		for _, p := range b.peers {
			s += int64(p.out.Stats().Bytes)
		}
		return s
	})
	b.reg.GaugeFunc("netoverlay_peers", func() int64 {
		b.mu.Lock()
		defer b.mu.Unlock()
		return int64(len(b.peers))
	})
	b.wg.Add(1)
	go b.run()
	if opts.CongestionDeadline > 0 {
		b.wg.Add(1)
		go b.monitor()
	}
	return b
}

// monitor is the slow-peer eviction goroutine: it periodically scans peer
// spill queues and detaches any peer congested past the deadline. It runs
// off the broker goroutine on purpose — detach enqueues a control thunk
// into the broker inbox, which only the broker goroutine drains, so
// triggering eviction from there would self-deadlock.
func (b *Broker) monitor() {
	defer b.wg.Done()
	deadline := b.opts.CongestionDeadline
	tick := deadline / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			var victims []*peer
			b.mu.Lock()
			for _, p := range b.peers {
				if p.out.CongestedFor() > deadline {
					victims = append(victims, p)
				}
			}
			b.mu.Unlock()
			// Detach outside b.mu: detach re-takes it and blocks on the
			// broker inbox for the retraction thunk.
			for _, p := range victims {
				p.detach(fmt.Errorf("netoverlay: peer %d congested past %v, evicting (queue %+v)",
					p.nodeID, deadline, p.out.Stats()))
				// Counted after detach so an observed eviction implies the
				// peer is already out of the peer table. The per-peer
				// counter survives the detach (it is history, not a view),
				// and continues counting if the same peer relinks.
				b.evicted.Inc()
				b.reg.Counter(peerInstrument("netoverlay_peer_evicted_total", p.nodeID)).Inc()
			}
		case <-b.quit:
			return
		}
	}
}

// NodeID returns this broker's federation identity.
func (b *Broker) NodeID() uint32 { return b.opts.NodeID }

// Serve accepts peer links on ln until Close. It always returns a non-nil
// error; after Close the error is ErrServerClosed.
func (b *Broker) Serve(ln net.Listener) error {
	b.mu.Lock()
	if b.closed.Load() {
		b.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	b.ln = ln
	b.mu.Unlock()
	return b.acceptLoop(ln)
}

// Listen binds addr and accepts peer links in the background; unlike Serve
// it returns once the listener is live, with its (possibly port-resolved)
// address. Accept-loop failures go to Options.Logf.
func (b *Broker) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netoverlay: listen %s: %w", addr, err)
	}
	b.mu.Lock()
	if b.closed.Load() {
		b.mu.Unlock()
		ln.Close()
		return nil, ErrClosed
	}
	b.ln = ln
	b.wg.Add(1)
	b.mu.Unlock()
	go func() {
		defer b.wg.Done()
		if err := b.acceptLoop(ln); !errors.Is(err, ErrServerClosed) {
			b.opts.Logf("netoverlay: node %d: accept loop: %v", b.opts.NodeID, err)
		}
	}()
	return ln.Addr(), nil
}

func (b *Broker) acceptLoop(ln net.Listener) error {
	for {
		nc, err := ln.Accept()
		if err != nil {
			if b.closed.Load() {
				return ErrServerClosed
			}
			return fmt.Errorf("netoverlay: accept: %w", err)
		}
		b.mu.Lock()
		if b.closed.Load() {
			b.mu.Unlock()
			nc.Close()
			return ErrServerClosed
		}
		b.pending[nc] = struct{}{}
		b.wg.Add(1)
		b.mu.Unlock()
		go func() {
			defer b.wg.Done()
			b.acceptPeer(nc)
		}()
	}
}

// ListenAndServe listens on addr and serves peer links.
func (b *Broker) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("netoverlay: listen %s: %w", addr, err)
	}
	return b.Serve(ln)
}

// Addr returns the serving listener address, or nil before Serve.
func (b *Broker) Addr() net.Addr {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.ln == nil {
		return nil
	}
	return b.ln.Addr()
}

// Connect dials a peer broker and adds the link, blocking until the link is
// live (existing local routes have been flooded over it).
func (b *Broker) Connect(addr string) error {
	if b.closed.Load() {
		return ErrClosed
	}
	nc, err := net.DialTimeout("tcp", addr, handshakeTimeout)
	if err != nil {
		return fmt.Errorf("netoverlay: dial %s: %w", addr, err)
	}
	b.mu.Lock()
	if b.closed.Load() {
		b.mu.Unlock()
		nc.Close()
		return ErrClosed
	}
	b.pending[nc] = struct{}{}
	b.mu.Unlock()
	peerID, err := b.handshake(nc, true)
	if err != nil {
		b.unpend(nc)
		nc.Close()
		return err
	}
	if err := b.attach(nc, peerID); err != nil {
		return err
	}
	return nil
}

// acceptPeer performs the server side of the handshake and attaches.
func (b *Broker) acceptPeer(nc net.Conn) {
	peerID, err := b.handshake(nc, false)
	if err != nil {
		b.opts.Logf("netoverlay: node %d: reject peer %s: %v", b.opts.NodeID, nc.RemoteAddr(), err)
		b.unpend(nc)
		nc.Close()
		return
	}
	if err := b.attach(nc, peerID); err != nil {
		b.opts.Logf("netoverlay: node %d: attach peer %d: %v", b.opts.NodeID, peerID, err)
	}
}

// Subscribe registers a local subscription. Its filter floods the
// federation asynchronously; brokers further away see it after one network
// round-trip per hop.
func (b *Broker) Subscribe(expr boolexpr.Expr, h Handler) (SubRef, error) {
	if b.closed.Load() {
		return SubRef{}, ErrClosed
	}
	if expr == nil {
		return SubRef{}, fmt.Errorf("netoverlay: nil subscription expression")
	}
	if h == nil {
		return SubRef{}, fmt.Errorf("netoverlay: nil handler")
	}
	// Validate compilability up front (throwaway interner) so installation
	// cannot fail asynchronously, and require the filter to survive the
	// text round trip it takes across every link.
	var n predicate.ID
	if _, err := subtree.Compile(expr, func(predicate.P) predicate.ID { n++; return n }, subtree.Options{
		Encoding: b.opts.Engine.Encoding,
		Reorder:  b.opts.Engine.Reorder,
	}); err != nil {
		return SubRef{}, fmt.Errorf("netoverlay: invalid subscription: %w", err)
	}
	back, err := sublang.Parse(expr.String())
	if err != nil {
		return SubRef{}, fmt.Errorf("netoverlay: filter does not survive the wire text form: %w", err)
	}
	if !boolexpr.Equal(expr, back) {
		return SubRef{}, fmt.Errorf("netoverlay: filter changes meaning across the wire text form: %s", expr)
	}
	id := uint64(b.opts.NodeID)<<32 | (b.nextSub.Add(1) & 0xffffffff)
	b.localSubs.Store(id, struct{}{})
	if !b.enqueue(inMsg{m: router.Msg{Kind: router.Sub, SubID: id, Expr: expr}, from: -1, h: h}) {
		b.localSubs.Delete(id)
		return SubRef{}, ErrClosed
	}
	return SubRef{id: id}, nil
}

// Unsubscribe retracts a subscription created by this broker's Subscribe.
func (b *Broker) Unsubscribe(ref SubRef) error {
	if b.closed.Load() {
		return ErrClosed
	}
	if _, ok := b.localSubs.LoadAndDelete(ref.id); !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSub, ref.id)
	}
	if !b.enqueue(inMsg{m: router.Msg{Kind: router.Unsub, SubID: ref.id}, from: -1}) {
		return ErrClosed
	}
	return nil
}

// Publish injects an event at this broker. With Options.TraceSampleEvery
// set, every Nth event is stamped with a trace that rides the wire across
// every hop it takes through the federation.
func (b *Broker) Publish(ev event.Event) error {
	if b.closed.Load() {
		return ErrClosed
	}
	b.published.Inc()
	m := router.Msg{Kind: router.Event, Ev: ev}
	if n := b.opts.TraceSampleEvery; n > 0 {
		if seq := b.traceSeq.Add(1); seq%uint64(n) == 0 {
			id := uint64(b.opts.NodeID)<<32 | (seq & 0xffffffff)
			if id == 0 { // zero means "untraced" on the wire; never emit it
				id = 1 << 63
			}
			m.Trace = router.Trace{ID: id, OriginNanos: time.Now().UnixNano()}
		}
	}
	if !b.enqueue(inMsg{m: m, from: -1}) {
		return ErrClosed
	}
	return nil
}

// Stats returns an activity snapshot. It is one coherent registry read:
// every field comes from the same obs.Registry.Snapshot, whose
// effects-before-causes read order keeps Forwarded ≤ Published and
// Delivered ≤ Published even while publishes are in flight.
func (b *Broker) Stats() Stats {
	var st Stats
	for _, s := range b.reg.Snapshot() {
		switch s.Name {
		case "netoverlay_published_total":
			st.Published = s.Value
		case "netoverlay_install_errors_total":
			st.InstallErrors = s.Value
		case "netoverlay_evicted_total":
			st.Evicted = s.Value
		case "netoverlay_shed_total":
			st.Shed = s.Value
		case "netoverlay_spilled_bytes_total":
			st.SpilledBytes = s.Value
		case "netoverlay_queue_bytes":
			st.QueuedBytes = uint64(s.GaugeValue)
		case "netoverlay_peers":
			st.Peers = int(s.GaugeValue)
		case "router_forwarded_total":
			st.Forwarded = s.Value
		case "router_delivered_total":
			st.Delivered = s.Value
		case "router_sub_msgs_total":
			st.SubscriptionMsgs = s.Value
		case "router_cover_suppressed_total":
			st.CoverSuppressed = s.Value
		case "router_hop_dropped_total":
			st.HopDropped = s.Value
		}
	}
	return st
}

// Metrics returns the registry this broker's instruments live in — the
// one from Options.Metrics, or the private default. Hand it to obs.Serve
// (or obs.Endpoint with Traces) to expose this broker operationally.
func (b *Broker) Metrics() *obs.Registry { return b.reg }

// Traces returns the ring of recent per-hop records for sampled traced
// events received by this broker (see Options.TraceSampleEvery).
func (b *Broker) Traces() *obs.TraceRing { return b.ring }

// Activity returns a monotone counter of broker work (messages processed,
// frames written). Settle uses it to detect quiescence.
func (b *Broker) Activity() uint64 { return b.activity.Load() }

// idle reports whether nothing is queued locally: the inbox is empty and
// every peer spill queue is drained.
func (b *Broker) idle() bool {
	if len(b.inbox) != 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, p := range b.peers {
		if p.out.Len() != 0 {
			return false
		}
	}
	return true
}

// Settle blocks until the given brokers have been jointly quiet — no
// activity anywhere, nothing queued — for the idle window. It is the
// federation analogue of overlay.Flush for brokers sharing a process (tests
// and benchmarks); it returns early if every broker closes. The window must
// comfortably exceed the links' one-hop latency; loopback tests are fine
// with tens of milliseconds.
func Settle(idle time.Duration, brokers ...*Broker) {
	if idle <= 0 {
		idle = 50 * time.Millisecond
	}
	sum := func() uint64 {
		var s uint64
		for _, b := range brokers {
			s += b.Activity()
		}
		return s
	}
	allIdle := func() bool {
		for _, b := range brokers {
			if !b.closed.Load() && !b.idle() {
				return false
			}
		}
		return true
	}
	anyOpen := func() bool {
		for _, b := range brokers {
			if !b.closed.Load() {
				return true
			}
		}
		return false
	}
	last := sum()
	lastChange := time.Now()
	for anyOpen() {
		time.Sleep(idle / 8)
		if cur := sum(); cur != last {
			last, lastChange = cur, time.Now()
			continue
		}
		if allIdle() && time.Since(lastChange) >= idle {
			return
		}
	}
}

// Quiesce blocks until this broker alone has been quiet for the idle
// window. Other federation members may still be working; use Settle when
// all brokers share the process.
func (b *Broker) Quiesce(idle time.Duration) { Settle(idle, b) }

// Close stops the broker: the listener, every peer link and all goroutines.
func (b *Broker) Close() error {
	if b.closed.Swap(true) {
		return nil
	}
	close(b.quit)
	b.mu.Lock()
	ln := b.ln
	peers := make([]*peer, 0, len(b.peers))
	for _, p := range b.peers {
		peers = append(peers, p)
	}
	pending := make([]net.Conn, 0, len(b.pending))
	for nc := range b.pending {
		pending = append(pending, nc)
	}
	b.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, nc := range pending {
		nc.Close()
	}
	for _, p := range peers {
		p.shutdown()
	}
	b.wg.Wait()
	return nil
}

// enqueue delivers one message to the broker inbox; false once closed.
// External callers (API, peer readers) may block on a full inbox — the
// broker goroutine itself never calls this, so the block always resolves.
func (b *Broker) enqueue(m inMsg) bool {
	select {
	case b.inbox <- m:
		return true
	case <-b.quit:
		return false
	}
}

// run is the broker goroutine: the single owner of the router state.
func (b *Broker) run() {
	defer b.wg.Done()
	for {
		select {
		case m := <-b.inbox:
			b.activity.Add(1)
			if m.ctl != nil {
				m.ctl()
				continue
			}
			switch m.m.Kind {
			case router.Sub:
				installed, err := b.rt.HandleSubscribe(m.m.SubID, m.m.Expr, m.h, m.from)
				if err != nil {
					b.anomaly(err)
				} else if !installed && m.from != -1 {
					b.anomaly(fmt.Errorf("netoverlay: node %d: duplicate subscription %d flooded in (cycle in federation topology?)",
						b.opts.NodeID, m.m.SubID))
				}
			case router.Unsub:
				b.rt.HandleUnsubscribe(m.m.SubID, m.from)
			case router.Event:
				// HandleEventMsg, not HandleEvent: the message may carry a
				// trace, which must survive into the forwarded copies.
				b.rt.HandleEventMsg(m.m, m.from)
			}
		case <-b.quit:
			return
		}
	}
}

// anomaly surfaces a routing error as a counted stat plus the callback.
func (b *Broker) anomaly(err error) {
	b.installErrors.Inc()
	b.opts.Logf("netoverlay: node %d: %v", b.opts.NodeID, err)
	if b.opts.OnError != nil {
		b.opts.OnError(err)
	}
}

// brokerTransport adapts peer spill queues to the router's non-blocking
// Transport. Called only on the broker goroutine.
type brokerTransport Broker

func (t *brokerTransport) Send(link int, m router.Msg) {
	b := (*Broker)(t)
	if link >= len(b.links) {
		return
	}
	if p := b.links[link]; p != nil {
		// Events are sheddable under congestion; control traffic
		// (subscriptions, retractions) never is, so routing state stays
		// consistent however slow the peer.
		if m.Kind == router.Event {
			p.out.Offer(m)
			return
		}
		p.out.Push(m)
	}
}

func (b *Broker) unpend(nc net.Conn) {
	b.mu.Lock()
	delete(b.pending, nc)
	b.mu.Unlock()
}
