package netoverlay

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"noncanon/internal/chaos"
	"noncanon/internal/event"
)

// startBrokerOpts is startBroker with full control over the options.
func startBrokerOpts(t *testing.T, opts Options) *Broker {
	t.Helper()
	b := NewBroker(opts)
	if _, err := b.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

// TestCloseDuringDetachRace drives Broker.Close concurrently with a peer
// detach (the remote side closing its end) over many rounds. Run under
// -race: detach used to enqueue the route-retraction ctl even while the
// broker was shutting down, racing Close's teardown of the routing state.
func TestCloseDuringDetachRace(t *testing.T) {
	for i := 0; i < 25; i++ {
		a := NewBroker(Options{NodeID: 1})
		if _, err := a.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		b := NewBroker(Options{NodeID: 2})
		if err := b.Connect(a.Addr().String()); err != nil {
			a.Close()
			b.Close()
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		// b's close makes a's readLoop detach; a's close races it.
		go func() { defer wg.Done(); b.Close() }()
		go func() { defer wg.Done(); a.Close() }()
		wg.Wait()
	}
}

// TestHalfOpenPeerDetachedByIdleTimeout severs a link without FIN (a
// stalled relay: connections stay open, nothing moves) and checks the
// idle-read deadline detaches the silent peer and retracts its routes —
// the leak was that only a write ever noticed a dead peer, so a quiet
// subscriber's routes stayed installed forever.
func TestHalfOpenPeerDetachedByIdleTimeout(t *testing.T) {
	hub := startBrokerOpts(t, Options{
		NodeID:          1,
		ReadIdleTimeout: 250 * time.Millisecond,
		PingInterval:    -1, // silence ourselves: only the peer's traffic can keep the link alive
		Logf:            t.Logf,
	})
	proxy, err := chaos.NewProxy(hub.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	leaf := startBrokerOpts(t, Options{
		NodeID:       2,
		PingInterval: 50 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err := leaf.Connect(proxy.Addr()); err != nil {
		t.Fatal(err)
	}
	if _, err := leaf.Subscribe(band(1, 100), func(event.Event) {}); err != nil {
		t.Fatal(err)
	}
	Settle(settleIdle, hub, leaf)

	// While the leaf's pings flow, the link survives several idle windows.
	time.Sleep(4 * 250 * time.Millisecond)
	if peers := hub.Stats().Peers; peers != 1 {
		t.Fatalf("hub peers = %d with live pings, want 1", peers)
	}

	// Freeze the relay: both TCP connections stay open, all traffic stops.
	proxy.Stall()
	deadline := time.Now().Add(10 * time.Second)
	for hub.Stats().Peers != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if peers := hub.Stats().Peers; peers != 0 {
		t.Fatalf("hub peers = %d after half-open stall, want 0", peers)
	}

	// The dead peer's routes are gone: publishing a matching event forwards
	// nowhere.
	Settle(settleIdle, hub)
	before := hub.Stats().Forwarded
	if err := hub.Publish(bandEvent(1, 5)); err != nil {
		t.Fatal(err)
	}
	Settle(settleIdle, hub)
	if after := hub.Stats().Forwarded; after != before {
		t.Errorf("hub forwarded %d copies toward the half-open peer", after-before)
	}
}

// TestSlowPeerShedsThenEvicted is the flow-control core in miniature: a
// stalled peer's spill queue stops growing at the watermark (events shed
// and counted, queue bytes bounded), and once congested past the deadline
// the peer is evicted with full route retraction while a healthy peer's
// deliveries continue.
func TestSlowPeerShedsThenEvicted(t *testing.T) {
	const highWater = 32 << 10
	hub := startBrokerOpts(t, Options{
		NodeID:             1,
		LinkHighWater:      highWater,
		CongestionDeadline: 150 * time.Millisecond,
		PingInterval:       -1,
		ReadIdleTimeout:    -1, // isolate eviction: only congestion may kill links here
		Logf:               t.Logf,
	})
	proxy, err := chaos.NewProxy(hub.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	slow := startBrokerOpts(t, Options{NodeID: 2, PingInterval: -1, ReadIdleTimeout: -1, Logf: t.Logf})
	if err := slow.Connect(proxy.Addr()); err != nil {
		t.Fatal(err)
	}
	healthy := startBrokerOpts(t, Options{NodeID: 3, PingInterval: -1, ReadIdleTimeout: -1, Logf: t.Logf})
	if err := healthy.Connect(hub.Addr().String()); err != nil {
		t.Fatal(err)
	}

	// The slow peer wants everything; the healthy peer a narrow band.
	if _, err := slow.Subscribe(band(1, 1000), func(event.Event) {}); err != nil {
		t.Fatal(err)
	}
	var healthyGot atomic.Uint64
	if _, err := healthy.Subscribe(band(1, 10), func(event.Event) {
		healthyGot.Add(1)
	}); err != nil {
		t.Fatal(err)
	}
	Settle(settleIdle, hub, slow, healthy)

	// Storm through the stalled relay until the monitor evicts the peer.
	// Loopback socket buffers absorb megabytes before the spill queue fills
	// durably — early sheds are transient (the queue drains back below the
	// low watermark as the socket keeps absorbing), so a fixed event count
	// or a first-shed stop would pass on the old unbounded queue too. The
	// storm events (price 500) match only the slow peer's wide filter, so
	// the queue-byte bound is the slow link's alone.
	proxy.Stall()
	pad := strings.Repeat("x", 8<<10)
	var st Stats
	var maxQueued uint64
	for i := 0; i < 20000; i++ {
		ev := bandEvent(1, 500).Set("pad", pad).Set("seq", int64(i))
		if err := hub.Publish(ev); err != nil {
			t.Fatal(err)
		}
		st = hub.Stats()
		if st.QueuedBytes > maxQueued {
			maxQueued = st.QueuedBytes
		}
		if st.Evicted > 0 {
			break
		}
		if i%50 == 49 {
			// Give the monitor air: sustained congestion needs wall time.
			time.Sleep(time.Millisecond)
		}
	}
	if st.Evicted != 1 {
		t.Fatalf("stalled peer not evicted after storm: %+v", st)
	}
	if st.Shed == 0 {
		t.Errorf("Shed = 0 after a storm into a stalled peer: %+v", st)
	}
	if st.SpilledBytes == 0 {
		t.Error("SpilledBytes = 0; accounting is dead")
	}
	// The spill queue stayed bounded by the watermark (one in-flight event
	// of slack for the admitted crossing push), not by the storm size.
	if maxQueued > 2*highWater {
		t.Errorf("peak QueuedBytes = %d, want <= %d: queue grew past the watermark", maxQueued, 2*highWater)
	}
	if st.Peers != 1 {
		t.Fatalf("Peers = %d after eviction, want 1 (healthy only)", st.Peers)
	}

	// Post-eviction, a matching event forwards only to the healthy peer and
	// still arrives there.
	Settle(settleIdle, hub, healthy)
	before, healthyBefore := hub.Stats().Forwarded, healthyGot.Load()
	if err := hub.Publish(bandEvent(1, 5).Set("seq", int64(9001))); err != nil {
		t.Fatal(err)
	}
	Settle(settleIdle, hub, healthy)
	if d := hub.Stats().Forwarded - before; d != 1 {
		t.Errorf("hub forwarded %d copies after eviction, want 1 (healthy peer only)", d)
	}
	if healthyGot.Load() != healthyBefore+1 {
		t.Errorf("healthy subscriber deliveries = %d, want %d", healthyGot.Load(), healthyBefore+1)
	}
}
