package subtree

import (
	"encoding/binary"
	"fmt"

	"noncanon/internal/boolexpr"
	"noncanon/internal/predicate"
)

// Decode reconstructs the expression tree from compiled code, resolving
// predicate IDs through lookup (typically predicate.Registry.Get). It fully
// validates the byte layout and is the safe entry point for bytes of
// uncertain provenance.
func Decode(code []byte, lookup func(predicate.ID) (predicate.P, error)) (boolexpr.Expr, error) {
	if len(code) < 2 {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadCode, len(code))
	}
	var (
		e   boolexpr.Expr
		n   int
		err error
	)
	switch code[0] {
	case headerPaper:
		e, n, err = decodePaper(code, 1, lookup)
	case headerCompact:
		e, n, err = decodeCompact(code, 1, lookup)
	default:
		return nil, fmt.Errorf("%w: unknown header 0x%02x", ErrBadCode, code[0])
	}
	if err != nil {
		return nil, err
	}
	if n != len(code) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadCode, len(code)-n)
	}
	return e, nil
}

// Validate checks that code is a well-formed compiled tree whose predicate
// IDs all resolve.
func Validate(code []byte, lookup func(predicate.ID) (predicate.P, error)) error {
	_, err := Decode(code, lookup)
	return err
}

func decodePaper(code []byte, off int, lookup func(predicate.ID) (predicate.P, error)) (boolexpr.Expr, int, error) {
	if off >= len(code) {
		return nil, 0, fmt.Errorf("%w: truncated at %d", ErrBadCode, off)
	}
	switch code[off] {
	case opLeaf:
		if off+5 > len(code) {
			return nil, 0, fmt.Errorf("%w: truncated leaf at %d", ErrBadCode, off)
		}
		id := predicate.ID(binary.LittleEndian.Uint32(code[off+1:]))
		p, err := lookup(id)
		if err != nil {
			return nil, 0, fmt.Errorf("subtree: leaf %d: %w", id, err)
		}
		return boolexpr.Leaf{Pred: p}, off + 5, nil
	case opNot:
		if off+3 > len(code) {
			return nil, 0, fmt.Errorf("%w: truncated not at %d", ErrBadCode, off)
		}
		w := int(binary.LittleEndian.Uint16(code[off+1:]))
		child, end, err := decodePaper(code, off+3, lookup)
		if err != nil {
			return nil, 0, err
		}
		if end != off+3+w {
			return nil, 0, fmt.Errorf("%w: not-width %d but child ends at %d", ErrBadCode, w, end)
		}
		return boolexpr.Not{X: child}, end, nil
	case opAnd, opOr:
		if off+2 > len(code) {
			return nil, 0, fmt.Errorf("%w: truncated operator at %d", ErrBadCode, off)
		}
		count := int(code[off+1])
		if count == 0 {
			return nil, 0, fmt.Errorf("%w: zero-child operator at %d", ErrBadCode, off)
		}
		xs := make([]boolexpr.Expr, 0, count)
		p := off + 2
		for i := 0; i < count; i++ {
			if p+2 > len(code) {
				return nil, 0, fmt.Errorf("%w: truncated width at %d", ErrBadCode, p)
			}
			w := int(binary.LittleEndian.Uint16(code[p:]))
			child, end, err := decodePaper(code, p+2, lookup)
			if err != nil {
				return nil, 0, err
			}
			if end != p+2+w {
				return nil, 0, fmt.Errorf("%w: child width %d but child ends at %d", ErrBadCode, w, end)
			}
			xs = append(xs, child)
			p = end
		}
		if code[off] == opAnd {
			return boolexpr.And{Xs: xs}, p, nil
		}
		return boolexpr.Or{Xs: xs}, p, nil
	default:
		return nil, 0, fmt.Errorf("%w: unknown opcode 0x%02x at %d", ErrBadCode, code[off], off)
	}
}

func decodeCompact(code []byte, off int, lookup func(predicate.ID) (predicate.P, error)) (boolexpr.Expr, int, error) {
	if off >= len(code) {
		return nil, 0, fmt.Errorf("%w: truncated at %d", ErrBadCode, off)
	}
	switch code[off] {
	case opLeaf:
		id, n := binary.Uvarint(code[off+1:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("%w: bad leaf varint at %d", ErrBadCode, off)
		}
		p, err := lookup(predicate.ID(id))
		if err != nil {
			return nil, 0, fmt.Errorf("subtree: leaf %d: %w", id, err)
		}
		return boolexpr.Leaf{Pred: p}, off + 1 + n, nil
	case opNot:
		w, n := binary.Uvarint(code[off+1:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("%w: bad not-width at %d", ErrBadCode, off)
		}
		child, end, err := decodeCompact(code, off+1+n, lookup)
		if err != nil {
			return nil, 0, err
		}
		if end != off+1+n+int(w) {
			return nil, 0, fmt.Errorf("%w: not-width %d but child ends at %d", ErrBadCode, w, end)
		}
		return boolexpr.Not{X: child}, end, nil
	case opAnd, opOr:
		count, n := binary.Uvarint(code[off+1:])
		if n <= 0 || count == 0 {
			return nil, 0, fmt.Errorf("%w: bad child count at %d", ErrBadCode, off)
		}
		xs := make([]boolexpr.Expr, 0, count)
		p := off + 1 + n
		for i := uint64(0); i < count; i++ {
			w, wn := binary.Uvarint(code[p:])
			if wn <= 0 {
				return nil, 0, fmt.Errorf("%w: bad width varint at %d", ErrBadCode, p)
			}
			child, end, err := decodeCompact(code, p+wn, lookup)
			if err != nil {
				return nil, 0, err
			}
			if end != p+wn+int(w) {
				return nil, 0, fmt.Errorf("%w: child width %d but child ends at %d", ErrBadCode, w, end)
			}
			xs = append(xs, child)
			p = end
		}
		if code[off] == opAnd {
			return boolexpr.And{Xs: xs}, p, nil
		}
		return boolexpr.Or{Xs: xs}, p, nil
	default:
		return nil, 0, fmt.Errorf("%w: unknown opcode 0x%02x at %d", ErrBadCode, code[off], off)
	}
}
