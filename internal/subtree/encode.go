// Package subtree compiles subscription expressions into the paper's
// byte-level encoded subscription trees and evaluates them against a set of
// fulfilled predicates.
//
// Paper §3.3 fixes the encoding costs: one byte per Boolean operator, one
// byte for the child count of inner nodes, two bytes per child width and
// four bytes per predicate identifier. PaperEncoding reproduces that layout
// exactly. CompactEncoding is the "improved encoding" the paper defers to
// future work (varint identifiers and widths); the A2 ablation benchmark
// compares the two.
//
// Layout (PaperEncoding), after a one-byte header identifying the encoding:
//
//	leaf : opLeaf  id:u32le                        (5 bytes)
//	not  : opNot   width:u16le child               (3 bytes + child)
//	and  : opAnd   count:u8 { width:u16le child }* (2 bytes + children)
//	or   : opOr    count:u8 { width:u16le child }*
//
// Child widths let the evaluator jump over siblings once a conjunction
// fails or a disjunction succeeds (short-circuit evaluation).
package subtree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"noncanon/internal/boolexpr"
	"noncanon/internal/predicate"
)

// Encoding selects the byte-level layout of a compiled subscription tree.
type Encoding uint8

// Supported encodings.
const (
	// PaperEncoding is the fixed-width layout of paper §3.3.
	PaperEncoding Encoding = iota + 1
	// CompactEncoding replaces fixed-width identifiers and widths with
	// unsigned varints (the paper's future-work "improved encoding").
	CompactEncoding
)

func (e Encoding) String() string {
	switch e {
	case PaperEncoding:
		return "paper"
	case CompactEncoding:
		return "compact"
	default:
		return fmt.Sprintf("encoding(%d)", uint8(e))
	}
}

// Header bytes, doubling as format version tags.
const (
	headerPaper   = 0xB1
	headerCompact = 0xC1
)

// Node opcodes.
const (
	opLeaf = 0x01
	opAnd  = 0x02
	opOr   = 0x03
	opNot  = 0x04
)

// Compilation errors.
var (
	ErrTooManyChildren = errors.New("subtree: node exceeds 255 children")
	ErrChildTooLarge   = errors.New("subtree: child exceeds 64 KiB encoding limit")
	ErrEmptyNode       = errors.New("subtree: operator node without children")
	ErrBadCode         = errors.New("subtree: malformed encoded tree")
)

// Options configures compilation.
type Options struct {
	// Encoding selects the layout; zero value means PaperEncoding.
	Encoding Encoding
	// Reorder sorts the children of every inner node cheapest-first
	// (ascending encoded size), so short-circuit evaluation settles on leaf
	// children before descending into subtrees. This is the paper's
	// "reordering subscription trees" future-work optimisation (§3.2),
	// measured by the A1 ablation.
	Reorder bool
}

// Compiled is an encoded subscription tree plus registration metadata.
type Compiled struct {
	// Code is the encoded tree, starting with the header byte. It is the
	// loc(s) target of the paper's subscription location table.
	Code []byte
	// PredIDs lists the distinct predicate IDs referenced by the tree; the
	// engine feeds them into the predicate-subscription association table.
	PredIDs []predicate.ID
	// ZeroSat reports whether the expression is satisfiable with zero
	// fulfilled predicates (e.g. `not a = 1`). Such subscriptions can match
	// events that fulfil none of their predicates, so a candidate-driven
	// matcher must evaluate them on every event.
	ZeroSat bool
}

// MemBytes estimates the resident size of the compiled subscription
// (experiment M1).
func (c Compiled) MemBytes() int {
	const sliceOverhead = 24
	return sliceOverhead + len(c.Code) + sliceOverhead + 4*len(c.PredIDs)
}

// Compile encodes the expression, interning every distinct predicate exactly
// once through intern (typically predicate.Registry.Intern bound to the
// engine's registry).
func Compile(e boolexpr.Expr, intern func(predicate.P) predicate.ID, opts Options) (Compiled, error) {
	if opts.Encoding == 0 {
		opts.Encoding = PaperEncoding
	}
	c := &compiler{
		intern: intern,
		ids:    make(map[string]predicate.ID),
		opts:   opts,
	}
	var buf []byte
	switch opts.Encoding {
	case PaperEncoding:
		buf = append(buf, headerPaper)
	case CompactEncoding:
		buf = append(buf, headerCompact)
	default:
		return Compiled{}, fmt.Errorf("subtree: unknown encoding %d", opts.Encoding)
	}
	body, err := c.encode(e)
	if err != nil {
		return Compiled{}, err
	}
	buf = append(buf, body...)

	predIDs := make([]predicate.ID, 0, len(c.ids))
	for _, id := range c.ids {
		predIDs = append(predIDs, id)
	}
	sort.Slice(predIDs, func(i, j int) bool { return predIDs[i] < predIDs[j] })
	return Compiled{
		Code:    buf,
		PredIDs: predIDs,
		ZeroSat: boolexpr.ZeroSatisfiable(e),
	}, nil
}

type compiler struct {
	intern func(predicate.P) predicate.ID
	ids    map[string]predicate.ID // per-subscription predicate dedup
	opts   Options
}

func (c *compiler) leafID(p predicate.P) predicate.ID {
	k := p.String()
	if id, ok := c.ids[k]; ok {
		return id
	}
	id := c.intern(p)
	c.ids[k] = id
	return id
}

// encode serialises one node (without the format header).
func (c *compiler) encode(e boolexpr.Expr) ([]byte, error) {
	switch t := e.(type) {
	case boolexpr.Leaf:
		id := c.leafID(t.Pred)
		if c.opts.Encoding == CompactEncoding {
			return binary.AppendUvarint([]byte{opLeaf}, uint64(id)), nil
		}
		return binary.LittleEndian.AppendUint32([]byte{opLeaf}, uint32(id)), nil
	case boolexpr.Not:
		child, err := c.encode(t.X)
		if err != nil {
			return nil, err
		}
		return c.wrapUnary(opNot, child)
	case boolexpr.And:
		return c.encodeNary(opAnd, t.Xs)
	case boolexpr.Or:
		return c.encodeNary(opOr, t.Xs)
	default:
		return nil, fmt.Errorf("subtree: unknown expression node %T", e)
	}
}

func (c *compiler) wrapUnary(op byte, child []byte) ([]byte, error) {
	if c.opts.Encoding == CompactEncoding {
		out := binary.AppendUvarint([]byte{op}, uint64(len(child)))
		return append(out, child...), nil
	}
	if len(child) > 0xFFFF {
		return nil, ErrChildTooLarge
	}
	out := binary.LittleEndian.AppendUint16([]byte{op}, uint16(len(child)))
	return append(out, child...), nil
}

func (c *compiler) encodeNary(op byte, xs []boolexpr.Expr) ([]byte, error) {
	if len(xs) == 0 {
		return nil, ErrEmptyNode
	}
	if c.opts.Encoding == PaperEncoding && len(xs) > 255 {
		return nil, ErrTooManyChildren
	}
	children := make([][]byte, len(xs))
	for i, x := range xs {
		b, err := c.encode(x)
		if err != nil {
			return nil, err
		}
		children[i] = b
	}
	if c.opts.Reorder {
		// Cheapest-first, stable so equal-size children keep author order.
		sort.SliceStable(children, func(i, j int) bool {
			return len(children[i]) < len(children[j])
		})
	}
	var out []byte
	if c.opts.Encoding == CompactEncoding {
		out = binary.AppendUvarint([]byte{op}, uint64(len(children)))
		for _, ch := range children {
			out = binary.AppendUvarint(out, uint64(len(ch)))
			out = append(out, ch...)
		}
		return out, nil
	}
	out = []byte{op, byte(len(children))}
	for _, ch := range children {
		if len(ch) > 0xFFFF {
			return nil, ErrChildTooLarge
		}
		out = binary.LittleEndian.AppendUint16(out, uint16(len(ch)))
		out = append(out, ch...)
	}
	return out, nil
}
