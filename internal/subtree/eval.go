package subtree

import (
	"encoding/binary"

	"noncanon/internal/predicate"
)

// Eval evaluates a compiled subscription tree against the set of fulfilled
// predicates, provided as a membership function (engines back it with an
// epoch-stamped lookup table so that no per-event clearing is needed).
//
// Evaluation short-circuits: a failing conjunct ends its And, a succeeding
// disjunct ends its Or; sibling widths let the evaluator skip unevaluated
// subtrees without touching their bytes.
//
// Eval assumes code was produced by Compile; Validate rejects foreign bytes.
func Eval(code []byte, matched func(predicate.ID) bool) bool {
	if len(code) < 2 {
		return false
	}
	switch code[0] {
	case headerPaper:
		return evalPaper(code, 1, matched)
	case headerCompact:
		return evalCompact(code, 1, matched)
	default:
		return false
	}
}

func evalPaper(code []byte, off int, matched func(predicate.ID) bool) bool {
	switch code[off] {
	case opLeaf:
		id := binary.LittleEndian.Uint32(code[off+1:])
		return matched(predicate.ID(id))
	case opNot:
		return !evalPaper(code, off+3, matched)
	case opAnd, opOr:
		isAnd := code[off] == opAnd
		count := int(code[off+1])
		p := off + 2
		for i := 0; i < count; i++ {
			w := int(binary.LittleEndian.Uint16(code[p:]))
			if evalPaper(code, p+2, matched) != isAnd {
				// And with a false child, or Or with a true child: decided.
				return !isAnd
			}
			p += 2 + w
		}
		return isAnd
	default:
		return false
	}
}

func evalCompact(code []byte, off int, matched func(predicate.ID) bool) bool {
	switch code[off] {
	case opLeaf:
		id, _ := binary.Uvarint(code[off+1:])
		return matched(predicate.ID(id))
	case opNot:
		_, n := binary.Uvarint(code[off+1:])
		return !evalCompact(code, off+1+n, matched)
	case opAnd, opOr:
		isAnd := code[off] == opAnd
		count, n := binary.Uvarint(code[off+1:])
		p := off + 1 + n
		for i := uint64(0); i < count; i++ {
			w, wn := binary.Uvarint(code[p:])
			if evalCompact(code, p+wn, matched) != isAnd {
				return !isAnd
			}
			p += wn + int(w)
		}
		return isAnd
	default:
		return false
	}
}

// EvalMarked is the engine fast path: membership of the fulfilled set is an
// epoch-stamp comparison against a dense mark table indexed by predicate ID,
// avoiding a closure call per leaf. marks[id-1] == epoch means fulfilled.
//
//nclint:hotpath
func EvalMarked(code []byte, marks []uint32, epoch uint32) bool {
	if len(code) < 2 {
		return false
	}
	switch code[0] {
	case headerPaper:
		return evalPaperMarked(code, 1, marks, epoch)
	case headerCompact:
		return evalCompactMarked(code, 1, marks, epoch)
	default:
		return false
	}
}

//nclint:hotpath
func evalPaperMarked(code []byte, off int, marks []uint32, epoch uint32) bool {
	switch code[off] {
	case opLeaf:
		i := int(binary.LittleEndian.Uint32(code[off+1:])) - 1
		return i >= 0 && i < len(marks) && marks[i] == epoch
	case opNot:
		return !evalPaperMarked(code, off+3, marks, epoch)
	case opAnd, opOr:
		isAnd := code[off] == opAnd
		count := int(code[off+1])
		p := off + 2
		for i := 0; i < count; i++ {
			w := int(binary.LittleEndian.Uint16(code[p:]))
			if evalPaperMarked(code, p+2, marks, epoch) != isAnd {
				return !isAnd
			}
			p += 2 + w
		}
		return isAnd
	default:
		return false
	}
}

//nclint:hotpath
func evalCompactMarked(code []byte, off int, marks []uint32, epoch uint32) bool {
	switch code[off] {
	case opLeaf:
		id, _ := binary.Uvarint(code[off+1:])
		i := int(id) - 1
		return i >= 0 && i < len(marks) && marks[i] == epoch
	case opNot:
		_, n := binary.Uvarint(code[off+1:])
		return !evalCompactMarked(code, off+1+n, marks, epoch)
	case opAnd, opOr:
		isAnd := code[off] == opAnd
		count, n := binary.Uvarint(code[off+1:])
		p := off + 1 + n
		for i := uint64(0); i < count; i++ {
			w, wn := binary.Uvarint(code[p:])
			if evalCompactMarked(code, p+wn, marks, epoch) != isAnd {
				return !isAnd
			}
			p += wn + int(w)
		}
		return isAnd
	default:
		return false
	}
}

// CountEvaluatedLeaves evaluates like Eval but also reports how many leaf
// predicates were actually inspected — the instrumentation behind the A1
// (child reordering) ablation.
func CountEvaluatedLeaves(code []byte, matched func(predicate.ID) bool) (result bool, leaves int) {
	if len(code) < 2 {
		return false, 0
	}
	count := func(id predicate.ID) bool {
		leaves++
		return matched(id)
	}
	switch code[0] {
	case headerPaper:
		return evalPaper(code, 1, count), leaves
	case headerCompact:
		return evalCompact(code, 1, count), leaves
	default:
		return false, 0
	}
}
