package subtree

import (
	"math/rand"
	"testing"

	"noncanon/internal/boolexpr"
	"noncanon/internal/predicate"
)

func benchCompiled(b *testing.B, opts Options) (Compiled, map[predicate.ID]bool) {
	b.Helper()
	ti := newInterner()
	c, err := Compile(fig1(), ti.intern, opts)
	if err != nil {
		b.Fatal(err)
	}
	matched := map[predicate.ID]bool{
		ti.ids["a > 10"]:  true,
		ti.ids["c <= 20"]: true,
	}
	return c, matched
}

func BenchmarkEvalPaper(b *testing.B) {
	c, matched := benchCompiled(b, Options{})
	fn := func(id predicate.ID) bool { return matched[id] }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Eval(c.Code, fn)
	}
}

func BenchmarkEvalCompact(b *testing.B) {
	c, matched := benchCompiled(b, Options{Encoding: CompactEncoding})
	fn := func(id predicate.ID) bool { return matched[id] }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Eval(c.Code, fn)
	}
}

func BenchmarkCompile(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	exprs := make([]boolexpr.Expr, 64)
	for i := range exprs {
		exprs[i] = boolexpr.RandomExpr(rng, boolexpr.RandomConfig{MaxDepth: 4, MaxFanout: 4})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ti := newInterner()
		if _, err := Compile(exprs[i%len(exprs)], ti.intern, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	ti := newInterner()
	c, err := Compile(fig1(), ti.intern, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(c.Code, ti.lookup); err != nil {
			b.Fatal(err)
		}
	}
}
