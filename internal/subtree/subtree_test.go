package subtree

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"noncanon/internal/boolexpr"
	"noncanon/internal/predicate"
)

// testInterner is a minimal stand-in for predicate.Registry.
type testInterner struct {
	ids   map[string]predicate.ID
	preds map[predicate.ID]predicate.P
	calls int
}

func newInterner() *testInterner {
	return &testInterner{ids: map[string]predicate.ID{}, preds: map[predicate.ID]predicate.P{}}
}

func (ti *testInterner) intern(p predicate.P) predicate.ID {
	ti.calls++
	k := p.String()
	if id, ok := ti.ids[k]; ok {
		return id
	}
	id := predicate.ID(len(ti.ids) + 1)
	ti.ids[k] = id
	ti.preds[id] = p
	return id
}

func (ti *testInterner) lookup(id predicate.ID) (predicate.P, error) {
	p, ok := ti.preds[id]
	if !ok {
		return predicate.P{}, fmt.Errorf("unknown id %d", id)
	}
	return p, nil
}

func fig1() boolexpr.Expr {
	return boolexpr.NewAnd(
		boolexpr.NewOr(
			boolexpr.Pred("a", predicate.Gt, 10),
			boolexpr.Pred("a", predicate.Le, 5),
			boolexpr.Pred("b", predicate.Eq, 1),
		),
		boolexpr.NewOr(
			boolexpr.Pred("c", predicate.Le, 20),
			boolexpr.Pred("c", predicate.Eq, 30),
			boolexpr.Pred("d", predicate.Eq, 5),
		),
	)
}

func TestCompileFig1PaperLayout(t *testing.T) {
	ti := newInterner()
	c, err := Compile(fig1(), ti.intern, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Paper cost model: leaf = 1+4, or-node = 1+1+3*(2+5) = 23,
	// and-node = 1+1+2*(2+23) = 52, header = 1 → 53 bytes total.
	if len(c.Code) != 53 {
		t.Errorf("code size = %d, want 53 (paper byte costs)", len(c.Code))
	}
	if len(c.PredIDs) != 6 {
		t.Errorf("PredIDs = %v, want 6 distinct", c.PredIDs)
	}
	if c.ZeroSat {
		t.Error("fig1 is not zero-satisfiable")
	}
	if c.Code[0] != headerPaper {
		t.Errorf("header = 0x%02x", c.Code[0])
	}
}

func TestCompileDedupsSharedPredicates(t *testing.T) {
	ti := newInterner()
	p := boolexpr.Pred("a", predicate.Eq, 1)
	e := boolexpr.NewOr(
		boolexpr.NewAnd(p, boolexpr.Pred("b", predicate.Eq, 2)),
		boolexpr.NewAnd(p, boolexpr.Pred("c", predicate.Eq, 3)),
	)
	c, err := Compile(e, ti.intern, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.PredIDs) != 3 {
		t.Errorf("PredIDs = %v, want 3 distinct", c.PredIDs)
	}
	if ti.calls != 3 {
		t.Errorf("intern called %d times, want 3 (once per distinct predicate)", ti.calls)
	}
}

func TestCompileZeroSat(t *testing.T) {
	ti := newInterner()
	c, err := Compile(boolexpr.NewNot(boolexpr.Pred("a", predicate.Eq, 1)), ti.intern, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.ZeroSat {
		t.Error("not(a=1) must be flagged zero-satisfiable")
	}
}

func TestCompileErrors(t *testing.T) {
	ti := newInterner()
	// Empty operator node (not constructible via NewAnd, but via literal).
	if _, err := Compile(boolexpr.And{}, ti.intern, Options{}); !errors.Is(err, ErrEmptyNode) {
		t.Errorf("empty And err = %v", err)
	}
	// >255 children.
	xs := make([]boolexpr.Expr, 256)
	for i := range xs {
		xs[i] = boolexpr.Pred("a", predicate.Eq, i)
	}
	if _, err := Compile(boolexpr.And{Xs: xs}, ti.intern, Options{}); !errors.Is(err, ErrTooManyChildren) {
		t.Errorf("256-child err = %v", err)
	}
	// Compact encoding accepts the same 256-child node.
	if _, err := Compile(boolexpr.And{Xs: xs}, ti.intern, Options{Encoding: CompactEncoding}); err != nil {
		t.Errorf("compact 256-child err = %v", err)
	}
	// Unknown encoding.
	if _, err := Compile(fig1(), ti.intern, Options{Encoding: Encoding(9)}); err == nil {
		t.Error("unknown encoding must fail")
	}
}

func TestEvalFig1(t *testing.T) {
	for _, enc := range []Encoding{PaperEncoding, CompactEncoding} {
		for _, reorder := range []bool{false, true} {
			ti := newInterner()
			c, err := Compile(fig1(), ti.intern, Options{Encoding: enc, Reorder: reorder})
			if err != nil {
				t.Fatal(err)
			}
			idOf := func(s string) predicate.ID { return ti.ids[s] }
			tests := []struct {
				matched []predicate.ID
				want    bool
			}{
				{[]predicate.ID{idOf("a > 10"), idOf("c <= 20")}, true},
				{[]predicate.ID{idOf("b = 1"), idOf("d = 5")}, true},
				{[]predicate.ID{idOf("a > 10")}, false},
				{[]predicate.ID{idOf("c = 30")}, false},
				{nil, false},
			}
			for i, tt := range tests {
				set := map[predicate.ID]bool{}
				for _, id := range tt.matched {
					set[id] = true
				}
				got := Eval(c.Code, func(id predicate.ID) bool { return set[id] })
				if got != tt.want {
					t.Errorf("enc=%s reorder=%v case %d: Eval = %v, want %v", enc, reorder, i, got, tt.want)
				}
			}
		}
	}
}

func TestEvalMatchesASTProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	cfg := boolexpr.RandomConfig{MaxDepth: 5, MaxFanout: 4, AllowNot: true}
	for _, enc := range []Encoding{PaperEncoding, CompactEncoding} {
		for _, reorder := range []bool{false, true} {
			for i := 0; i < 300; i++ {
				e := boolexpr.RandomExpr(rng, cfg)
				ti := newInterner()
				c, err := Compile(e, ti.intern, Options{Encoding: enc, Reorder: reorder})
				if err != nil {
					t.Fatal(err)
				}
				for trial := 0; trial < 10; trial++ {
					seed := rng.Int63()
					astAssign := func(p predicate.P) bool {
						h := int64(0)
						for _, b := range []byte(p.String()) {
							h = h*131 + int64(b)
						}
						return (h^seed)%3 == 0
					}
					// Build the equivalent ID-level set.
					matched := map[predicate.ID]bool{}
					for k, id := range ti.ids {
						p, _ := ti.lookup(id)
						_ = k
						matched[id] = astAssign(p)
					}
					got := Eval(c.Code, func(id predicate.ID) bool { return matched[id] })
					want := e.EvalWith(astAssign)
					if got != want {
						t.Fatalf("enc=%s reorder=%v iter=%d: Eval=%v AST=%v\nexpr: %s", enc, reorder, i, got, want, e)
					}
				}
			}
		}
	}
}

func TestEvalMarkedMatchesEvalProperty(t *testing.T) {
	// The engine fast path (EvalMarked over an epoch-stamped mark table)
	// must agree with the closure-based Eval on random expressions and
	// fulfilled sets, for both encodings.
	rng := rand.New(rand.NewSource(44))
	cfg := boolexpr.RandomConfig{MaxDepth: 5, MaxFanout: 4, AllowNot: true}
	for _, enc := range []Encoding{PaperEncoding, CompactEncoding} {
		for i := 0; i < 200; i++ {
			e := boolexpr.RandomExpr(rng, cfg)
			ti := newInterner()
			c, err := Compile(e, ti.intern, Options{Encoding: enc})
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 10; trial++ {
				epoch := uint32(trial + 1)
				marks := make([]uint32, len(ti.ids)+3)
				set := map[predicate.ID]bool{}
				for _, id := range ti.ids {
					if rng.Intn(2) == 0 {
						marks[id-1] = epoch
						set[id] = true
					}
				}
				got := EvalMarked(c.Code, marks, epoch)
				want := Eval(c.Code, func(id predicate.ID) bool { return set[id] })
				if got != want {
					t.Fatalf("enc=%s iter=%d: EvalMarked=%v Eval=%v\nexpr: %s", enc, i, got, want, e)
				}
			}
		}
	}
	// Degenerate inputs.
	if EvalMarked(nil, nil, 1) || EvalMarked([]byte{headerPaper}, nil, 1) {
		t.Error("EvalMarked of short code must be false")
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	cfg := boolexpr.RandomConfig{MaxDepth: 5, MaxFanout: 4, AllowNot: true}
	for _, enc := range []Encoding{PaperEncoding, CompactEncoding} {
		for i := 0; i < 200; i++ {
			e := boolexpr.RandomExpr(rng, cfg)
			ti := newInterner()
			c, err := Compile(e, ti.intern, Options{Encoding: enc})
			if err != nil {
				t.Fatal(err)
			}
			back, err := Decode(c.Code, ti.lookup)
			if err != nil {
				t.Fatalf("enc=%s iter=%d: Decode: %v", enc, i, err)
			}
			if !boolexpr.Equal(e, back) {
				t.Fatalf("enc=%s iter=%d: round trip differs\norig: %s\nback: %s", enc, i, e, back)
			}
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	ti := newInterner()
	c, err := Compile(fig1(), ti.intern, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// All truncations must error, never panic.
	for n := 0; n < len(c.Code); n++ {
		if _, err := Decode(c.Code[:n], ti.lookup); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
	// Single-byte corruptions must error or decode to a *valid* tree (some
	// flips only change a predicate ID to another registered one).
	for pos := 0; pos < len(c.Code); pos++ {
		mut := append([]byte(nil), c.Code...)
		mut[pos] ^= 0xFF
		if e, err := Decode(mut, ti.lookup); err == nil {
			if e == nil {
				t.Errorf("corruption at %d: nil expr without error", pos)
			}
		}
	}
	// Trailing garbage.
	if _, err := Decode(append(append([]byte(nil), c.Code...), 0x00), ti.lookup); err == nil {
		t.Error("trailing byte accepted")
	}
	// Unknown header.
	if _, err := Decode([]byte{0x77, opLeaf, 0, 0, 0, 0}, ti.lookup); err == nil {
		t.Error("unknown header accepted")
	}
	// Validate mirrors Decode.
	if err := Validate(c.Code, ti.lookup); err != nil {
		t.Errorf("Validate of good code: %v", err)
	}
	if err := Validate(c.Code[:5], ti.lookup); err == nil {
		t.Error("Validate of truncated code passed")
	}
}

func TestDecodeRejectsCorruptionCompact(t *testing.T) {
	ti := newInterner()
	c, err := Compile(fig1(), ti.intern, Options{Encoding: CompactEncoding})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(c.Code); n++ {
		if _, err := Decode(c.Code[:n], ti.lookup); err == nil {
			t.Errorf("compact truncation to %d bytes accepted", n)
		}
	}
	for pos := 1; pos < len(c.Code); pos++ {
		mut := append([]byte(nil), c.Code...)
		mut[pos] ^= 0xFF
		_, _ = Decode(mut, ti.lookup) // must not panic
	}
	if _, err := Decode(append(append([]byte(nil), c.Code...), 0x00), ti.lookup); err == nil {
		t.Error("compact trailing byte accepted")
	}
}

func TestCountEvaluatedLeavesBothEncodings(t *testing.T) {
	for _, enc := range []Encoding{PaperEncoding, CompactEncoding} {
		ti := newInterner()
		c, err := Compile(fig1(), ti.intern, Options{Encoding: enc})
		if err != nil {
			t.Fatal(err)
		}
		// Nothing fulfilled: the And fails after exhausting the first Or's
		// three leaves.
		res, leaves := CountEvaluatedLeaves(c.Code, func(predicate.ID) bool { return false })
		if res || leaves != 3 {
			t.Errorf("enc=%s: res=%v leaves=%d, want false/3", enc, res, leaves)
		}
		// Everything fulfilled: each Or succeeds at its first leaf.
		res, leaves = CountEvaluatedLeaves(c.Code, func(predicate.ID) bool { return true })
		if !res || leaves != 2 {
			t.Errorf("enc=%s: res=%v leaves=%d, want true/2", enc, res, leaves)
		}
	}
	if res, n := CountEvaluatedLeaves(nil, nil); res || n != 0 {
		t.Error("degenerate CountEvaluatedLeaves should be false/0")
	}
	if res, n := CountEvaluatedLeaves([]byte{0x77, 0x01}, func(predicate.ID) bool { return true }); res || n != 0 {
		t.Error("unknown header CountEvaluatedLeaves should be false/0")
	}
}

func TestEvalMalformedReturnsFalse(t *testing.T) {
	if Eval(nil, nil) || Eval([]byte{headerPaper}, nil) {
		t.Error("Eval of short code must be false")
	}
	if Eval([]byte{0x00, 0x00}, nil) {
		t.Error("Eval of unknown header must be false")
	}
}

func TestCompactSmallerThanPaper(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cfg := boolexpr.RandomConfig{MaxDepth: 5, MaxFanout: 4}
	for i := 0; i < 100; i++ {
		e := boolexpr.RandomExpr(rng, cfg)
		tiP, tiC := newInterner(), newInterner()
		p, err := Compile(e, tiP.intern, Options{Encoding: PaperEncoding})
		if err != nil {
			t.Fatal(err)
		}
		c, err := Compile(e, tiC.intern, Options{Encoding: CompactEncoding})
		if err != nil {
			t.Fatal(err)
		}
		if len(c.Code) > len(p.Code) {
			t.Fatalf("iter %d: compact %dB > paper %dB for %s", i, len(c.Code), len(p.Code), e)
		}
	}
}

func TestReorderPutsLeavesFirst(t *testing.T) {
	// (big-subtree AND leaf): with reorder the leaf is evaluated first, so
	// a false leaf short-circuits before touching the subtree.
	big := boolexpr.NewOr(
		boolexpr.Pred("x", predicate.Eq, 1),
		boolexpr.Pred("x", predicate.Eq, 2),
		boolexpr.Pred("x", predicate.Eq, 3),
		boolexpr.Pred("x", predicate.Eq, 4),
	)
	leaf := boolexpr.Pred("g", predicate.Eq, 0)
	e := boolexpr.NewAnd(big, leaf)

	evalLeaves := func(reorder bool) int {
		ti := newInterner()
		c, err := Compile(e, ti.intern, Options{Reorder: reorder})
		if err != nil {
			t.Fatal(err)
		}
		// Nothing matches: the And must fail.
		_, n := CountEvaluatedLeaves(c.Code, func(predicate.ID) bool { return false })
		return n
	}
	plain, reordered := evalLeaves(false), evalLeaves(true)
	if plain <= reordered {
		t.Errorf("reorder did not help: plain=%d reordered=%d leaves", plain, reordered)
	}
	if reordered != 1 {
		t.Errorf("reordered eval should stop after the false leaf, inspected %d", reordered)
	}
}

func TestMemBytes(t *testing.T) {
	ti := newInterner()
	c, err := Compile(fig1(), ti.intern, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.MemBytes() < len(c.Code)+4*len(c.PredIDs) {
		t.Errorf("MemBytes %d too small", c.MemBytes())
	}
}

func TestEncodingString(t *testing.T) {
	if PaperEncoding.String() != "paper" || CompactEncoding.String() != "compact" {
		t.Error("Encoding.String wrong")
	}
	if Encoding(9).String() == "" {
		t.Error("unknown encoding String empty")
	}
}
