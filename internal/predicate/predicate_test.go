package predicate

import (
	"strings"
	"testing"

	"noncanon/internal/event"
	"noncanon/internal/value"
)

func TestOpString(t *testing.T) {
	tests := []struct {
		op   Op
		want string
	}{
		{Eq, "="}, {Ne, "!="}, {Lt, "<"}, {Le, "<="}, {Gt, ">"}, {Ge, ">="},
		{Prefix, "prefix"}, {Suffix, "suffix"}, {Contains, "contains"}, {Exists, "exists"},
	}
	for _, tt := range tests {
		if got := tt.op.String(); got != tt.want {
			t.Errorf("Op(%d).String() = %q, want %q", tt.op, got, tt.want)
		}
	}
	if got := Op(99).String(); !strings.HasPrefix(got, "op(") {
		t.Errorf("unknown op String = %q", got)
	}
}

func TestOpValid(t *testing.T) {
	if Op(0).Valid() {
		t.Error("zero Op must be invalid")
	}
	if !Eq.Valid() || !Exists.Valid() {
		t.Error("defined ops must be valid")
	}
	if Op(200).Valid() {
		t.Error("out-of-range op must be invalid")
	}
}

func TestEvalNumeric(t *testing.T) {
	e := event.New().Set("price", 10).Set("ratio", 2.5)
	tests := []struct {
		p    P
		want bool
	}{
		{New("price", Eq, 10), true},
		{New("price", Eq, 10.0), true},
		{New("price", Eq, 11), false},
		{New("price", Ne, 11), true},
		{New("price", Ne, 10), false},
		{New("price", Lt, 11), true},
		{New("price", Lt, 10), false},
		{New("price", Le, 10), true},
		{New("price", Gt, 9.5), true},
		{New("price", Gt, 10), false},
		{New("price", Ge, 10), true},
		{New("ratio", Lt, 3), true},
		{New("ratio", Ge, 2.5), true},
	}
	for _, tt := range tests {
		if got := tt.p.Eval(e); got != tt.want {
			t.Errorf("%s on %s = %v, want %v", tt.p, e, got, tt.want)
		}
	}
}

func TestEvalString(t *testing.T) {
	e := event.New().Set("sym", "ACME-CORP")
	tests := []struct {
		p    P
		want bool
	}{
		{New("sym", Eq, "ACME-CORP"), true},
		{New("sym", Eq, "ACME"), false},
		{New("sym", Ne, "X"), true},
		{New("sym", Lt, "B"), true},
		{New("sym", Gt, "B"), false},
		{New("sym", Prefix, "ACME"), true},
		{New("sym", Prefix, "CORP"), false},
		{New("sym", Prefix, ""), true},
		{New("sym", Suffix, "CORP"), true},
		{New("sym", Suffix, "ACME"), false},
		{New("sym", Contains, "ME-C"), true},
		{New("sym", Contains, ""), true},
		{New("sym", Contains, "XYZ"), false},
	}
	for _, tt := range tests {
		if got := tt.p.Eval(e); got != tt.want {
			t.Errorf("%s on %s = %v, want %v", tt.p, e, got, tt.want)
		}
	}
}

func TestEvalExistsAndMissing(t *testing.T) {
	e := event.New().Set("a", 1)
	if !New("a", Exists, nil).Eval(e) {
		t.Error("exists a should match")
	}
	if New("b", Exists, nil).Eval(e) {
		t.Error("exists b should not match")
	}
	if New("b", Eq, 1).Eval(e) {
		t.Error("missing attribute must evaluate false")
	}
}

func TestEvalTypeMismatch(t *testing.T) {
	e := event.New().Set("a", 1).Set("s", "x").Set("b", true)
	// Cross-kind relational comparisons are false, never panics.
	cases := []P{
		New("a", Eq, "1"),
		New("a", Lt, "z"),
		New("s", Gt, 5),
		New("s", Prefix, 5),
		New("a", Contains, "1"),
		New("b", Lt, true), // bool supports Compare: false<true, so b<true is false for b=true
	}
	for _, p := range cases[:5] {
		if p.Eval(e) {
			t.Errorf("%s should be false on type mismatch", p)
		}
	}
	if cases[5].Eval(e) {
		t.Errorf("true < true should be false")
	}
	// Ne across kinds is also false: incomparable values are neither equal
	// nor unequal under the ordering semantics.
	if New("a", Ne, "1").Eval(e) {
		t.Error("int != string must be false (incomparable)")
	}
}

func TestEvalValueInvalidOp(t *testing.T) {
	p := P{Attr: "a", Op: Op(99), Operand: value.OfInt(1)}
	if p.EvalValue(value.OfInt(1)) {
		t.Error("invalid op must evaluate false")
	}
}

func TestPredicateString(t *testing.T) {
	if got, want := New("price", Le, 20).String(), "price <= 20"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if got, want := New("sym", Prefix, "AC").String(), `sym prefix "AC"`; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if got, want := New("a", Exists, nil).String(), "exists a"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestMemBytes(t *testing.T) {
	small := New("a", Eq, 1)
	big := New("attribute-with-a-long-name", Eq, "operand string")
	if small.MemBytes() <= 0 || big.MemBytes() <= small.MemBytes() {
		t.Errorf("MemBytes small=%d big=%d", small.MemBytes(), big.MemBytes())
	}
}
