package predicate

import (
	"errors"
	"fmt"
)

// ErrNotFound is returned when an ID does not name a live predicate.
var ErrNotFound = errors.New("predicate: id not registered")

// Registry interns predicates and assigns IDs. Predicates are reference
// counted: every subscription using a predicate takes one reference, and the
// predicate (and its index entries) can be dropped when the count reaches
// zero on unsubscription.
//
// Registry is not safe for concurrent use; engines serialise access.
type Registry struct {
	byKey  map[key]ID
	preds  []P      // dense storage indexed by ID-1
	refs   []uint32 // reference counts, parallel to preds
	free   []ID     // reusable IDs whose refcount dropped to zero
	live   int
	memory int // running MemBytes over live predicates
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[key]ID, 1024)}
}

// Intern registers p (or finds the existing identical predicate), increments
// its reference count and returns its ID.
func (r *Registry) Intern(p P) ID {
	k := key{attr: p.Attr, op: p.Op, val: p.Operand.Key()}
	if id, ok := r.byKey[k]; ok {
		r.refs[id-1]++
		return id
	}
	var id ID
	if n := len(r.free); n > 0 {
		id = r.free[n-1]
		r.free = r.free[:n-1]
		r.preds[id-1] = p
		r.refs[id-1] = 1
	} else {
		r.preds = append(r.preds, p)
		r.refs = append(r.refs, 1)
		id = ID(len(r.preds))
	}
	r.byKey[k] = id
	r.live++
	r.memory += p.MemBytes()
	return id
}

// Get returns the predicate for id.
func (r *Registry) Get(id ID) (P, error) {
	if !r.alive(id) {
		return P{}, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	return r.preds[id-1], nil
}

// Release decrements the reference count for id. It reports whether the
// predicate died (count reached zero), in which case the caller must remove
// it from the indexes. Releasing an unknown ID returns ErrNotFound.
func (r *Registry) Release(id ID) (died bool, err error) {
	if !r.alive(id) {
		return false, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	i := id - 1
	r.refs[i]--
	if r.refs[i] > 0 {
		return false, nil
	}
	p := r.preds[i]
	delete(r.byKey, key{attr: p.Attr, op: p.Op, val: p.Operand.Key()})
	r.preds[i] = P{}
	r.free = append(r.free, id)
	r.live--
	r.memory -= p.MemBytes()
	return true, nil
}

// Refs returns the current reference count of id (0 if dead/unknown).
func (r *Registry) Refs(id ID) uint32 {
	if !r.alive(id) {
		return 0
	}
	return r.refs[id-1]
}

// Len returns the number of live predicates.
func (r *Registry) Len() int { return r.live }

// Cap returns the total ID space ever allocated (live + reusable).
func (r *Registry) Cap() int { return len(r.preds) }

// MemBytes estimates resident bytes of all live predicates plus registry
// overhead, for the memory model (experiment M1).
func (r *Registry) MemBytes() int {
	const mapEntryOverhead = 64 // key struct + map bucket amortised
	const sliceEntryOverhead = 4 + 4
	return r.memory + r.live*mapEntryOverhead + len(r.preds)*sliceEntryOverhead
}

func (r *Registry) alive(id ID) bool {
	return id >= 1 && int(id) <= len(r.preds) && r.refs[id-1] > 0
}
