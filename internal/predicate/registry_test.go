package predicate

import (
	"errors"
	"math/rand"
	"testing"
)

func TestInternDedup(t *testing.T) {
	r := NewRegistry()
	a := r.Intern(New("price", Gt, 10))
	b := r.Intern(New("price", Gt, 10))
	if a != b {
		t.Fatalf("identical predicates got distinct IDs %d, %d", a, b)
	}
	if r.Refs(a) != 2 {
		t.Errorf("Refs = %d, want 2", r.Refs(a))
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
	// Numerically unified operands dedup too.
	c := r.Intern(New("price", Gt, 10.0))
	if c != a {
		t.Errorf("10 and 10.0 operands should intern to one predicate")
	}
}

func TestInternDistinct(t *testing.T) {
	r := NewRegistry()
	ids := map[ID]bool{}
	preds := []P{
		New("price", Gt, 10),
		New("price", Ge, 10),
		New("price", Gt, 11),
		New("volume", Gt, 10),
		New("price", Gt, "10"),
	}
	for _, p := range preds {
		ids[r.Intern(p)] = true
	}
	if len(ids) != len(preds) {
		t.Errorf("%d distinct predicates interned to %d IDs", len(preds), len(ids))
	}
}

func TestGet(t *testing.T) {
	r := NewRegistry()
	id := r.Intern(New("a", Eq, 5))
	p, err := r.Get(id)
	if err != nil || p.Attr != "a" || p.Op != Eq {
		t.Fatalf("Get = %v, %v", p, err)
	}
	if _, err := r.Get(999); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(999) err = %v, want ErrNotFound", err)
	}
	if _, err := r.Get(0); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(0) err = %v, want ErrNotFound", err)
	}
}

func TestReleaseLifecycle(t *testing.T) {
	r := NewRegistry()
	id := r.Intern(New("a", Eq, 5))
	r.Intern(New("a", Eq, 5)) // refcount 2

	died, err := r.Release(id)
	if err != nil || died {
		t.Fatalf("first release: died=%v err=%v, want alive", died, err)
	}
	died, err = r.Release(id)
	if err != nil || !died {
		t.Fatalf("second release: died=%v err=%v, want dead", died, err)
	}
	if _, err := r.Get(id); !errors.Is(err, ErrNotFound) {
		t.Error("dead predicate should not be gettable")
	}
	if _, err := r.Release(id); !errors.Is(err, ErrNotFound) {
		t.Error("releasing a dead predicate should fail")
	}
	if r.Len() != 0 {
		t.Errorf("Len = %d, want 0", r.Len())
	}
}

func TestIDReuse(t *testing.T) {
	r := NewRegistry()
	id := r.Intern(New("a", Eq, 1))
	if _, err := r.Release(id); err != nil {
		t.Fatal(err)
	}
	id2 := r.Intern(New("b", Eq, 2))
	if id2 != id {
		t.Errorf("freed ID %d should be reused, got %d", id, id2)
	}
	if r.Cap() != 1 {
		t.Errorf("Cap = %d, want 1", r.Cap())
	}
	// The new predicate must be retrievable and correct.
	p, err := r.Get(id2)
	if err != nil || p.Attr != "b" {
		t.Errorf("reused slot Get = %v, %v", p, err)
	}
}

func TestReinternAfterDeath(t *testing.T) {
	r := NewRegistry()
	id := r.Intern(New("a", Eq, 1))
	if _, err := r.Release(id); err != nil {
		t.Fatal(err)
	}
	// Interning the same predicate again must produce a live entry again.
	id2 := r.Intern(New("a", Eq, 1))
	if r.Refs(id2) != 1 {
		t.Errorf("Refs = %d, want 1", r.Refs(id2))
	}
	if p, err := r.Get(id2); err != nil || p.Attr != "a" {
		t.Errorf("Get = %v, %v", p, err)
	}
}

func TestMemBytesTracksLive(t *testing.T) {
	r := NewRegistry()
	base := r.MemBytes()
	id := r.Intern(New("some-attribute", Eq, "some-operand-value"))
	if r.MemBytes() <= base {
		t.Error("MemBytes should grow on intern")
	}
	grown := r.MemBytes()
	if _, err := r.Release(id); err != nil {
		t.Fatal(err)
	}
	if r.MemBytes() >= grown {
		t.Error("MemBytes should shrink on death")
	}
}

func TestRegistryRandomisedLifecycle(t *testing.T) {
	// Model-based test: registry behaviour matches a simple map model under
	// random intern/release sequences.
	rng := rand.New(rand.NewSource(42))
	r := NewRegistry()
	type entry struct {
		id   ID
		p    P
		refs int
	}
	model := map[string]*entry{} // keyed by predicate string

	for i := 0; i < 5000; i++ {
		attr := string(rune('a' + rng.Intn(5)))
		val := rng.Intn(5)
		p := New(attr, Eq, val)
		k := p.String()
		if rng.Intn(2) == 0 {
			id := r.Intern(p)
			if m, ok := model[k]; ok {
				if m.id != id {
					t.Fatalf("step %d: intern %s returned %d, model has %d", i, k, id, m.id)
				}
				m.refs++
			} else {
				model[k] = &entry{id: id, p: p, refs: 1}
			}
		} else if m, ok := model[k]; ok {
			died, err := r.Release(m.id)
			if err != nil {
				t.Fatalf("step %d: release live %s: %v", i, k, err)
			}
			m.refs--
			if (m.refs == 0) != died {
				t.Fatalf("step %d: death mismatch for %s: model refs=%d died=%v", i, k, m.refs, died)
			}
			if m.refs == 0 {
				delete(model, k)
			}
		}
		live := 0
		for range model {
			live++
		}
		if r.Len() != live {
			t.Fatalf("step %d: Len=%d model=%d", i, r.Len(), live)
		}
	}
}
