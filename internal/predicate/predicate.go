// Package predicate defines attribute-operator-value filters — the leaves of
// subscription expressions — and a registry that interns them.
//
// Predicates may be shared among subscriptions (the paper, §3.1); the
// registry deduplicates structurally identical predicates and hands out
// stable numeric IDs that the rest of the system (indexes, association
// tables, encoded subscription trees) uses in place of the predicate itself.
package predicate

import (
	"fmt"

	"noncanon/internal/event"
	"noncanon/internal/intern"
	"noncanon/internal/value"
)

// ID identifies a registered predicate. The paper's encoding reserves four
// bytes per leaf, so IDs are 32-bit.
type ID uint32

// Op enumerates the comparison operators of the subscription language.
type Op uint8

// Supported operators. Numeric attributes support the six relational
// operators; strings support equality, inequality, ordering and the
// substring family; Exists tests mere attribute presence.
const (
	Eq       Op = iota + 1 // =
	Ne                     // !=
	Lt                     // <
	Le                     // <=
	Gt                     // >
	Ge                     // >=
	Prefix                 // prefix-of: attr value starts with operand
	Suffix                 // suffix-of
	Contains               // substring
	Exists                 // attribute present (operand ignored)
)

// String returns the subscription-language spelling of the operator.
func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Prefix:
		return "prefix"
	case Suffix:
		return "suffix"
	case Contains:
		return "contains"
	case Exists:
		return "exists"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Valid reports whether o is a defined operator.
func (o Op) Valid() bool { return o >= Eq && o <= Exists }

// P is a predicate: an attribute-operator-operand triple. Sym is Attr's
// interned symbol; the constructors fill it, and literal construction may
// leave it intern.None, in which case evaluation falls back to comparing
// Attr by name.
type P struct {
	Attr    string
	Sym     intern.Sym
	Op      Op
	Operand value.Value
}

// New builds a predicate from a native operand value. Registering a
// subscription is what defines the local attribute vocabulary, so New
// interns the attribute name.
func New(attr string, op Op, operand any) P {
	return P{Attr: attr, Sym: intern.Of(attr), Op: op, Operand: value.Of(operand)}
}

// Make is New for an operand already in value form.
func Make(attr string, op Op, operand value.Value) P {
	return P{Attr: attr, Sym: intern.Of(attr), Op: op, Operand: operand}
}

// String renders the predicate in subscription-language syntax.
func (p P) String() string {
	if p.Op == Exists {
		return fmt.Sprintf("exists %s", p.Attr)
	}
	switch p.Op {
	case Prefix, Suffix, Contains:
		return fmt.Sprintf("%s %s %s", p.Attr, p.Op, p.Operand)
	default:
		return fmt.Sprintf("%s %s %s", p.Attr, p.Op, p.Operand)
	}
}

// Eval applies the predicate to an event. Missing attributes and
// type-incompatible comparisons evaluate to false (never error), matching
// standard pub/sub semantics.
func (p P) Eval(e event.Event) bool {
	v, ok := e.GetSym(p.Sym, p.Attr)
	if p.Op == Exists {
		return ok
	}
	if !ok {
		return false
	}
	return p.EvalValue(v)
}

// EvalValue applies the predicate's comparison to a concrete value.
func (p P) EvalValue(v value.Value) bool {
	switch p.Op {
	case Eq:
		return v.Equal(p.Operand)
	case Ne:
		c, ok := v.Compare(p.Operand)
		return ok && c != 0
	case Lt:
		c, ok := v.Compare(p.Operand)
		return ok && c < 0
	case Le:
		c, ok := v.Compare(p.Operand)
		return ok && c <= 0
	case Gt:
		c, ok := v.Compare(p.Operand)
		return ok && c > 0
	case Ge:
		c, ok := v.Compare(p.Operand)
		return ok && c >= 0
	case Prefix:
		return stringPair(v, p.Operand, hasPrefix)
	case Suffix:
		return stringPair(v, p.Operand, hasSuffix)
	case Contains:
		return stringPair(v, p.Operand, contains)
	case Exists:
		return v.IsValid()
	default:
		return false
	}
}

func stringPair(v, operand value.Value, fn func(s, sub string) bool) bool {
	if v.Kind() != value.String || operand.Kind() != value.String {
		return false
	}
	return fn(v.Str(), operand.Str())
}

func hasPrefix(s, pre string) bool {
	return len(s) >= len(pre) && s[:len(pre)] == pre
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

func contains(s, sub string) bool {
	if len(sub) == 0 {
		return true
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// key is the interning key: structurally identical predicates (with
// numerically unified operands, see value.Key) collapse to one entry.
type key struct {
	attr string
	op   Op
	val  value.Key
}

// MemBytes estimates the resident size of the predicate.
func (p P) MemBytes() int {
	const structOverhead = 16 /* string header */ + 1 /* op */ + 7 /* pad */
	return structOverhead + len(p.Attr) + p.Operand.MemBytes()
}
