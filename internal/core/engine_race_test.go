package core

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"noncanon/internal/boolexpr"
	"noncanon/internal/event"
	"noncanon/internal/matcher"
	"noncanon/internal/predicate"
)

// raceExpr builds a small random AND/OR/NOT expression over integer
// attributes a0..a3 with operands in [0, 50).
func raceExpr(rng *rand.Rand, depth int) boolexpr.Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		attr := "a" + string(rune('0'+rng.Intn(4)))
		ops := []predicate.Op{predicate.Eq, predicate.Lt, predicate.Le, predicate.Gt, predicate.Ge}
		return boolexpr.Pred(attr, ops[rng.Intn(len(ops))], rng.Intn(50))
	}
	switch rng.Intn(3) {
	case 0:
		return boolexpr.NewAnd(raceExpr(rng, depth-1), raceExpr(rng, depth-1))
	case 1:
		return boolexpr.NewOr(raceExpr(rng, depth-1), raceExpr(rng, depth-1))
	default:
		return boolexpr.NewNot(raceExpr(rng, depth-1))
	}
}

func raceEvent(rng *rand.Rand) event.Event {
	ev := event.New()
	for i := 0; i < 4; i++ {
		ev = ev.Set("a"+string(rune('0'+i)), rng.Intn(50))
	}
	return ev
}

// TestConcurrentMatchCrossCheck stress-tests the concurrent read path under
// -race: a fixed population of "stable" subscriptions is registered up
// front, then matcher goroutines run Match/MatchPredicates/InstrumentedMatch
// while churn goroutines subscribe and unsubscribe throw-away subscriptions.
// Every Match result, projected onto the stable population, must equal the
// naive per-expression evaluation of the event — regardless of concurrent
// store mutation.
func TestConcurrentMatchCrossCheck(t *testing.T) {
	e, _, _ := newEngine(Options{})
	rng := rand.New(rand.NewSource(7))

	const stableN = 200
	stable := make(map[matcher.SubID]boolexpr.Expr, stableN)
	for i := 0; i < stableN; i++ {
		x := raceExpr(rng, 3)
		id, err := e.Subscribe(x)
		if err != nil {
			t.Fatal(err)
		}
		stable[id] = x
	}

	iters := 400
	if testing.Short() {
		iters = 100
	}
	workers := runtime.GOMAXPROCS(0) * 2
	if workers < 4 {
		workers = 4
	}

	var stop atomic.Bool
	var churnWG, matchWG sync.WaitGroup

	// Churn goroutines: register and remove throw-away subscriptions until
	// the matchers are done.
	for w := 0; w < workers/2; w++ {
		churnWG.Add(1)
		go func(seed int64) {
			defer churnWG.Done()
			rng := rand.New(rand.NewSource(seed))
			var mine []matcher.SubID
			for !stop.Load() {
				if len(mine) < 8 && rng.Intn(2) == 0 {
					id, err := e.Subscribe(raceExpr(rng, 3))
					if err != nil {
						t.Error(err)
						return
					}
					mine = append(mine, id)
				} else if len(mine) > 0 {
					id := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					if err := e.Unsubscribe(id); err != nil {
						t.Error(err)
						return
					}
				}
			}
			for _, id := range mine {
				if err := e.Unsubscribe(id); err != nil {
					t.Error(err)
				}
			}
		}(100 + int64(w))
	}

	// Match goroutines: cross-check against the naive matcher on the stable
	// population; churned IDs in the result are ignored (they belong to
	// whichever concurrent store state the read lock observed).
	for w := 0; w < (workers+1)/2; w++ {
		matchWG.Add(1)
		go func(seed int64) {
			defer matchWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				ev := raceEvent(rng)
				got := e.Match(ev)
				gotStable := make(map[matcher.SubID]bool, len(got))
				for _, id := range got {
					if _, ok := stable[id]; ok {
						gotStable[id] = true
					}
				}
				for id, x := range stable {
					if want := x.Eval(ev); want != gotStable[id] {
						t.Errorf("event %v: stable sub %d: naive=%v engine=%v (expr %v)",
							ev, id, want, gotStable[id], x)
						return
					}
				}
				// Exercise the other read-path entry points concurrently.
				e.MatchPredicates([]predicate.ID{predicate.ID(1 + rng.Intn(8))})
				e.InstrumentedMatch([]predicate.ID{predicate.ID(1 + rng.Intn(8))})
				_ = e.NumSubscriptions()
			}
		}(200 + int64(w))
	}

	matchWG.Wait()
	stop.Store(true)
	churnWG.Wait()

	// The store must be intact after the storm: a final serial cross-check.
	ev := raceEvent(rng)
	got := subIDs(e.Match(ev)...)
	for id, x := range stable {
		if x.Eval(ev) != got[id] {
			t.Fatalf("post-storm mismatch on sub %d", id)
		}
	}
}
