package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"noncanon/internal/boolexpr"
	"noncanon/internal/event"
	"noncanon/internal/index"
	"noncanon/internal/matcher"
	"noncanon/internal/predicate"
	"noncanon/internal/subtree"
)

func newEngine(opts Options) (*Engine, *predicate.Registry, *index.Index) {
	reg := predicate.NewRegistry()
	idx := index.New()
	return New(reg, idx, opts), reg, idx
}

func fig1() boolexpr.Expr {
	return boolexpr.NewAnd(
		boolexpr.NewOr(
			boolexpr.Pred("a", predicate.Gt, 10),
			boolexpr.Pred("a", predicate.Le, 5),
			boolexpr.Pred("b", predicate.Eq, 1),
		),
		boolexpr.NewOr(
			boolexpr.Pred("c", predicate.Le, 20),
			boolexpr.Pred("c", predicate.Eq, 30),
			boolexpr.Pred("d", predicate.Eq, 5),
		),
	)
}

func subIDs(xs ...matcher.SubID) map[matcher.SubID]bool {
	m := make(map[matcher.SubID]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}

func sameSubs(got []matcher.SubID, want map[matcher.SubID]bool) bool {
	if len(got) != len(want) {
		return false
	}
	for _, id := range got {
		if !want[id] {
			return false
		}
	}
	return true
}

func TestSubscribeAndMatchFig1(t *testing.T) {
	e, _, _ := newEngine(Options{})
	id, err := e.Subscribe(fig1())
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		ev   event.Event
		want bool
	}{
		{event.New().Set("a", 11).Set("c", 15), true},
		{event.New().Set("a", 3).Set("c", 30), true},
		{event.New().Set("b", 1).Set("d", 5), true},
		{event.New().Set("a", 7).Set("c", 15), false},
		{event.New().Set("a", 11).Set("c", 25), false},
		{event.New(), false},
	}
	for i, tt := range tests {
		got := e.Match(tt.ev)
		if tt.want != sameSubs(got, subIDs(id)) && tt.want {
			t.Errorf("case %d: Match(%s) = %v, want [%d]", i, tt.ev, got, id)
		}
		if !tt.want && len(got) != 0 {
			t.Errorf("case %d: Match(%s) = %v, want none", i, tt.ev, got)
		}
	}
	if e.NumSubscriptions() != 1 || e.NumUnits() != 1 {
		t.Errorf("NumSubscriptions=%d NumUnits=%d", e.NumSubscriptions(), e.NumUnits())
	}
}

func TestMultipleSubscriptionsSharedPredicates(t *testing.T) {
	e, reg, _ := newEngine(Options{})
	// Two subscriptions share the predicate price > 100.
	s1, err := e.Subscribe(boolexpr.NewAnd(
		boolexpr.Pred("price", predicate.Gt, 100),
		boolexpr.Pred("sym", predicate.Eq, "A"),
	))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := e.Subscribe(boolexpr.NewAnd(
		boolexpr.Pred("price", predicate.Gt, 100),
		boolexpr.Pred("sym", predicate.Eq, "B"),
	))
	if err != nil {
		t.Fatal(err)
	}
	// Shared predicate interned once: 3 distinct predicates.
	if reg.Len() != 3 {
		t.Errorf("registry has %d predicates, want 3 (sharing)", reg.Len())
	}
	got := e.Match(event.New().Set("price", 150).Set("sym", "A"))
	if !sameSubs(got, subIDs(s1)) {
		t.Errorf("Match = %v, want [%d]", got, s1)
	}
	got = e.Match(event.New().Set("price", 150).Set("sym", "B"))
	if !sameSubs(got, subIDs(s2)) {
		t.Errorf("Match = %v, want [%d]", got, s2)
	}
	if got = e.Match(event.New().Set("price", 50).Set("sym", "A")); len(got) != 0 {
		t.Errorf("Match = %v, want none", got)
	}
}

func TestUnsubscribe(t *testing.T) {
	e, reg, idx := newEngine(Options{})
	id1, _ := e.Subscribe(fig1())
	id2, _ := e.Subscribe(boolexpr.Pred("a", predicate.Gt, 10)) // shares a>10

	if err := e.Unsubscribe(id1); err != nil {
		t.Fatal(err)
	}
	if e.NumSubscriptions() != 1 {
		t.Errorf("NumSubscriptions = %d", e.NumSubscriptions())
	}
	// Shared predicate survives, the other five died.
	if reg.Len() != 1 {
		t.Errorf("registry has %d predicates, want 1", reg.Len())
	}
	if idx.NumPredicates() != 1 {
		t.Errorf("index has %d predicates, want 1", idx.NumPredicates())
	}
	// Former fig1 match now only matches id2 via a>10.
	got := e.Match(event.New().Set("a", 11).Set("c", 15))
	if !sameSubs(got, subIDs(id2)) {
		t.Errorf("Match = %v, want [%d]", got, id2)
	}
	// Double unsubscribe fails.
	if err := e.Unsubscribe(id1); !errors.Is(err, matcher.ErrUnknownSubscription) {
		t.Errorf("double Unsubscribe err = %v", err)
	}
	if err := e.Unsubscribe(9999); !errors.Is(err, matcher.ErrUnknownSubscription) {
		t.Errorf("unknown Unsubscribe err = %v", err)
	}
	// Unsubscribing the last subscription empties everything.
	if err := e.Unsubscribe(id2); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 0 || idx.NumPredicates() != 0 || e.NumSubscriptions() != 0 {
		t.Error("engine not empty after last unsubscribe")
	}
}

func TestSubIDReuse(t *testing.T) {
	e, _, _ := newEngine(Options{})
	id1, _ := e.Subscribe(boolexpr.Pred("a", predicate.Eq, 1))
	if err := e.Unsubscribe(id1); err != nil {
		t.Fatal(err)
	}
	id2, _ := e.Subscribe(boolexpr.Pred("b", predicate.Eq, 2))
	if id2 != id1 {
		t.Errorf("freed SubID %d not reused, got %d", id1, id2)
	}
	got := e.Match(event.New().Set("b", 2))
	if !sameSubs(got, subIDs(id2)) {
		t.Errorf("Match = %v", got)
	}
}

func TestZeroSatisfiableNotSubscription(t *testing.T) {
	// `not a = 1` matches events where a is absent or different — even
	// though no predicate of the subscription is fulfilled (no candidacy).
	e, _, _ := newEngine(Options{})
	id, err := e.Subscribe(boolexpr.NewNot(boolexpr.Pred("a", predicate.Eq, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Match(event.New().Set("b", 7)); !sameSubs(got, subIDs(id)) {
		t.Errorf("absent attribute: Match = %v, want [%d]", got, id)
	}
	if got := e.Match(event.New().Set("a", 2)); !sameSubs(got, subIDs(id)) {
		t.Errorf("different value: Match = %v, want [%d]", got, id)
	}
	if got := e.Match(event.New().Set("a", 1)); len(got) != 0 {
		t.Errorf("matching value: Match = %v, want none", got)
	}
	// Mixed with a positive subscription; both matched once, no duplicates.
	id2, _ := e.Subscribe(boolexpr.Pred("a", predicate.Eq, 2))
	got := e.Match(event.New().Set("a", 2))
	if !sameSubs(got, subIDs(id, id2)) {
		t.Errorf("mixed: Match = %v, want [%d %d]", got, id, id2)
	}
	// Unsubscribing the zero-sat subscription clears the always list.
	if err := e.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	got = e.Match(event.New().Set("a", 2))
	if !sameSubs(got, subIDs(id2)) {
		t.Errorf("after unsub: Match = %v, want [%d]", got, id2)
	}
}

func TestMatchPredicatesPhaseTwoOnly(t *testing.T) {
	e, reg, _ := newEngine(Options{})
	id, _ := e.Subscribe(fig1())
	// Find the IDs of a>10 and c<=20 via the registry by re-interning
	// (interning an existing predicate returns its ID).
	aGt10 := reg.Intern(predicate.New("a", predicate.Gt, 10))
	cLe20 := reg.Intern(predicate.New("c", predicate.Le, 20))
	reg.Release(aGt10)
	reg.Release(cLe20)

	got := e.MatchPredicates([]predicate.ID{aGt10, cLe20})
	if !sameSubs(got, subIDs(id)) {
		t.Errorf("MatchPredicates = %v, want [%d]", got, id)
	}
	if got = e.MatchPredicates([]predicate.ID{aGt10}); len(got) != 0 {
		t.Errorf("half-fulfilled = %v, want none", got)
	}
	if got = e.MatchPredicates(nil); len(got) != 0 {
		t.Errorf("empty fulfilled = %v, want none", got)
	}
}

func TestExprRoundTrip(t *testing.T) {
	for _, opts := range []Options{{}, {Encoding: subtree.CompactEncoding}, {Simplify: true}} {
		e, _, _ := newEngine(opts)
		orig := fig1()
		id, err := e.Subscribe(orig)
		if err != nil {
			t.Fatal(err)
		}
		back, err := e.Expr(id)
		if err != nil {
			t.Fatal(err)
		}
		if !boolexpr.Equal(orig, back) {
			t.Errorf("opts %+v: Expr() = %s, want %s", opts, back, orig)
		}
	}
	e, _, _ := newEngine(Options{})
	if _, err := e.Expr(42); !errors.Is(err, matcher.ErrUnknownSubscription) {
		t.Errorf("Expr(42) err = %v", err)
	}
}

func TestSubscribeErrors(t *testing.T) {
	e, reg, idx := newEngine(Options{})
	if _, err := e.Subscribe(nil); err == nil {
		t.Error("nil expression must fail")
	}
	// 256 children exceed the paper encoding's child-count byte; the
	// rollback must release all interned predicates.
	xs := make([]boolexpr.Expr, 256)
	for i := range xs {
		xs[i] = boolexpr.Pred("a", predicate.Eq, i)
	}
	if _, err := e.Subscribe(boolexpr.And{Xs: xs}); !errors.Is(err, subtree.ErrTooManyChildren) {
		t.Fatalf("err = %v, want ErrTooManyChildren", err)
	}
	if reg.Len() != 0 {
		t.Errorf("rollback leaked %d predicates", reg.Len())
	}
	if idx.NumPredicates() != 0 {
		t.Errorf("rollback leaked %d index entries", idx.NumPredicates())
	}
	// The same subscription compiles fine with the compact encoding.
	e2, _, _ := newEngine(Options{Encoding: subtree.CompactEncoding})
	if _, err := e2.Subscribe(boolexpr.And{Xs: xs}); err != nil {
		t.Errorf("compact encoding should accept 256 children: %v", err)
	}
}

func TestEngineName(t *testing.T) {
	e, _, _ := newEngine(Options{})
	if e.Name() != "non-canonical" {
		t.Errorf("Name = %q", e.Name())
	}
}

func TestMemBytesGrows(t *testing.T) {
	e, _, _ := newEngine(Options{})
	base := e.MemBytes()
	var ids []matcher.SubID
	for i := 0; i < 100; i++ {
		id, err := e.Subscribe(boolexpr.NewAnd(
			boolexpr.Pred("a", predicate.Gt, i),
			boolexpr.Pred("b", predicate.Lt, i),
		))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	grown := e.MemBytes()
	if grown <= base {
		t.Errorf("MemBytes did not grow: %d -> %d", base, grown)
	}
	for _, id := range ids {
		if err := e.Unsubscribe(id); err != nil {
			t.Fatal(err)
		}
	}
	if final := e.MemBytes(); final >= grown {
		t.Errorf("MemBytes did not shrink after unsubscribe: %d -> %d", grown, final)
	}
}

// TestMatchAgainstASTProperty cross-checks the full engine pipeline against
// direct AST evaluation on randomly generated subscriptions and events.
func TestMatchAgainstASTProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cfg := boolexpr.RandomConfig{MaxDepth: 4, MaxFanout: 3, AllowNot: true, Domain: 30}
	for _, opts := range []Options{
		{},
		{Reorder: true},
		{Encoding: subtree.CompactEncoding},
		{Simplify: true},
	} {
		e, _, _ := newEngine(opts)
		exprs := make(map[matcher.SubID]boolexpr.Expr)
		for i := 0; i < 80; i++ {
			x := boolexpr.RandomExpr(rng, cfg)
			id, err := e.Subscribe(x)
			if err != nil {
				t.Fatal(err)
			}
			exprs[id] = x
		}
		// Unsubscribe a third.
		n := 0
		for id := range exprs {
			if n%3 == 0 {
				if err := e.Unsubscribe(id); err != nil {
					t.Fatal(err)
				}
				delete(exprs, id)
			}
			n++
		}
		for trial := 0; trial < 200; trial++ {
			ev := randomEvent(rng)
			want := map[matcher.SubID]bool{}
			for id, x := range exprs {
				if x.Eval(ev) {
					want[id] = true
				}
			}
			got := e.Match(ev)
			if !sameSubs(got, want) {
				t.Fatalf("opts %+v: Match(%s) = %v, want %v", opts, ev, got, want)
			}
		}
	}
}

func randomEvent(rng *rand.Rand) event.Event {
	ev := event.New()
	for i := 0; i < 8; i++ {
		if rng.Intn(2) == 0 {
			continue
		}
		attr := "a" + string(rune('0'+i))
		switch rng.Intn(4) {
		case 0:
			ev = ev.Set(attr, "s"+fmt.Sprint(rng.Intn(30)))
		case 1:
			ev = ev.Set(attr, float64(rng.Intn(30))+0.5)
		default:
			ev = ev.Set(attr, rng.Intn(30))
		}
	}
	return ev
}

func TestInstrumentedMatch(t *testing.T) {
	e, reg, _ := newEngine(Options{})
	if _, err := e.Subscribe(fig1()); err != nil {
		t.Fatal(err)
	}
	aGt10 := reg.Intern(predicate.New("a", predicate.Gt, 10))
	cLe20 := reg.Intern(predicate.New("c", predicate.Le, 20))
	reg.Release(aGt10)
	reg.Release(cLe20)

	leaves, evals := e.InstrumentedMatch([]predicate.ID{aGt10, cLe20})
	if evals != 1 {
		t.Errorf("evals = %d, want 1 candidate", evals)
	}
	// Short-circuit: first OR succeeds at leaf 1, second OR at leaf 1 → 2.
	if leaves != 2 {
		t.Errorf("leaves = %d, want 2 (short-circuit)", leaves)
	}
	// Unknown predicate IDs are tolerated (registered by another engine).
	if _, evals := e.InstrumentedMatch([]predicate.ID{9999}); evals != 0 {
		t.Errorf("unknown pred gave %d evals", evals)
	}
	// Consistency with MatchPredicates on the same fulfilled set.
	if got := e.MatchPredicates([]predicate.ID{aGt10, cLe20}); len(got) != 1 {
		t.Errorf("MatchPredicates = %v", got)
	}
}

func TestTreeBytes(t *testing.T) {
	e, _, _ := newEngine(Options{})
	if e.TreeBytes() != 0 {
		t.Errorf("empty TreeBytes = %d", e.TreeBytes())
	}
	id, _ := e.Subscribe(fig1())
	// Paper layout: fig1 encodes to 53 bytes.
	if got := e.TreeBytes(); got != 53 {
		t.Errorf("TreeBytes = %d, want 53", got)
	}
	id2, _ := e.Subscribe(boolexpr.Pred("z", predicate.Eq, 1)) // 1 header + 5 leaf
	if got := e.TreeBytes(); got != 59 {
		t.Errorf("TreeBytes = %d, want 59", got)
	}
	if err := e.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	if got := e.TreeBytes(); got != 6 {
		t.Errorf("TreeBytes after unsub = %d, want 6", got)
	}
	_ = id2
}

func TestEpochWrapAround(t *testing.T) {
	// Force the uint32 epoch to wrap and verify stale stamps cannot cause
	// false candidates or false matches.
	e, reg, _ := newEngine(Options{})
	id, _ := e.Subscribe(boolexpr.NewAnd(
		boolexpr.Pred("a", predicate.Eq, 1),
		boolexpr.Pred("b", predicate.Eq, 2),
	))
	aEq1 := reg.Intern(predicate.New("a", predicate.Eq, 1))
	bEq2 := reg.Intern(predicate.New("b", predicate.Eq, 2))
	reg.Release(aEq1)
	reg.Release(bEq2)

	// Epochs are private to each pooled scratch, so drive one scratch
	// directly through the phase-two path to control its counter.
	sc := &matchScratch{}
	match := func(fulfilled []predicate.ID) []matcher.SubID {
		e.mu.RLock()
		defer e.mu.RUnlock()
		if n := len(e.slots); len(sc.subMark) < n {
			sc.subMark = append(sc.subMark, make([]uint32, n-len(sc.subMark))...)
		}
		return e.matchScratched(sc, fulfilled)
	}

	// Seed stamps at the current epoch, then jump the counter to just below
	// the wrap point.
	if got := match([]predicate.ID{aEq1}); len(got) != 0 {
		t.Fatalf("half-match = %v", got)
	}
	sc.epoch = ^uint32(0) - 1
	// Two calls: the second wraps to 0 → clears tables → epoch 1. The old
	// stamps (from the call above) equal small epochs only if not cleared;
	// after clearing they are 0 and epoch is 1, so no false positives.
	if got := match([]predicate.ID{bEq2}); len(got) != 0 {
		t.Fatalf("pre-wrap half-match = %v", got)
	}
	if got := match([]predicate.ID{aEq1}); len(got) != 0 {
		t.Fatalf("post-wrap half-match = %v (stale stamp leaked)", got)
	}
	got := match([]predicate.ID{aEq1, bEq2})
	if !sameSubs(got, subIDs(id)) {
		t.Fatalf("full match after wrap = %v, want [%d]", got, id)
	}
}

// TestConcurrentAccess exercises the engine under parallel subscribe,
// unsubscribe and match; run with -race.
func TestConcurrentAccess(t *testing.T) {
	e, _, _ := newEngine(Options{})
	rngSeed := int64(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var mine []matcher.SubID
			for i := 0; i < 300; i++ {
				switch rng.Intn(3) {
				case 0:
					id, err := e.Subscribe(boolexpr.NewAnd(
						boolexpr.Pred("a", predicate.Gt, rng.Intn(50)),
						boolexpr.Pred("b", predicate.Lt, rng.Intn(50)),
					))
					if err != nil {
						t.Error(err)
						return
					}
					mine = append(mine, id)
				case 1:
					if len(mine) > 0 {
						id := mine[len(mine)-1]
						mine = mine[:len(mine)-1]
						if err := e.Unsubscribe(id); err != nil {
							t.Error(err)
							return
						}
					}
				default:
					e.Match(event.New().Set("a", rng.Intn(50)).Set("b", rng.Intn(50)))
				}
			}
		}(rngSeed + int64(w))
	}
	wg.Wait()
}
