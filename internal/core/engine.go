// Package core implements the paper's contribution: the non-canonical
// matching engine, which filters arbitrary Boolean subscriptions directly —
// no transformation into DNF — using the four data structures of Fig. 2:
//
//  1. one-dimensional predicate indexes (shared, internal/index),
//  2. a predicate-subscription association table (id(p) → {id(s)}),
//  3. a subscription location table (id(s) → loc(s)),
//  4. encoded subscription trees (internal/subtree).
//
// Event filtering (paper §3.2): phase one determines the fulfilled
// predicates via the indexes; phase two collects candidate subscriptions —
// those containing at least one fulfilled predicate — through the
// association table, locates their encoded trees through the location
// table, and evaluates each candidate's Boolean expression over the
// fulfilled set.
//
// One correctness extension beyond the paper: subscriptions whose expression
// is satisfiable with zero fulfilled predicates (possible once NOT is
// allowed, e.g. `not a = 1`) can match events for which they are never
// candidates. Such subscriptions are kept on an always-evaluate list. The
// paper's workloads (AND/OR only) never hit this path.
package core

import (
	"fmt"
	"sync"

	"noncanon/internal/boolexpr"
	"noncanon/internal/event"
	"noncanon/internal/index"
	"noncanon/internal/matcher"
	"noncanon/internal/predicate"
	"noncanon/internal/subtree"
)

// Options configures the engine.
type Options struct {
	// Encoding selects the subscription-tree layout (default PaperEncoding).
	Encoding subtree.Encoding
	// Reorder enables cheapest-first child ordering at compile time (the A1
	// ablation; paper §3.2 future work).
	Reorder bool
	// Simplify applies boolexpr.Simplify before compilation.
	Simplify bool
}

// Engine is the non-canonical matcher. It is safe for concurrent use, and
// the read path is genuinely concurrent: the subscription store (association
// table, location table, shared registry and index) is guarded by an
// RWMutex — Subscribe and Unsubscribe take the write lock, while Match,
// MatchPredicates and InstrumentedMatch run under the read lock, so any
// number of matching calls proceed simultaneously. The per-call mutable
// state (the epoch-stamped mark tables of §3.2) lives in a matchScratch
// recycled through a sync.Pool and re-sized against a store generation
// counter, so matching callers share no mutable memory.
type Engine struct {
	mu   sync.RWMutex
	reg  *predicate.Registry
	idx  *index.Index
	opts Options

	// assoc is the predicate-subscription association table, dense-indexed
	// by predicate ID (the registry hands out dense IDs). Array storage
	// follows the paper's memory-friendly implementation note ("since we
	// know the number of subscriptions per predicate we use arrays").
	assoc [][]matcher.SubID // assoc[pid-1] = subscriptions containing pid

	// slots is the subscription location table fused with subscription
	// storage: slots[id-1].compiled.Code is loc(s).
	slots []slot
	free  []matcher.SubID
	live  int

	// always lists zero-satisfiable subscriptions, evaluated on every event.
	always []matcher.SubID

	// gen is the store generation, bumped by every Subscribe/Unsubscribe
	// under the write lock. Pooled scratch records the generation it was
	// last sized for and re-syncs its mark tables when the store moved on.
	gen      uint64
	memTrees int // running sum of compiled.MemBytes()

	// scratch pools *matchScratch values for the read path.
	scratch sync.Pool
}

type slot struct {
	compiled subtree.Compiled
	live     bool
}

// matchScratch is the per-call mutable state of the two filtering phases:
// epoch-stamped mark tables (no per-event clearing) plus reusable buffers.
// Each Match-family call takes one scratch from the engine's pool, so
// concurrent readers never share mark tables. The mark tables are dense
// uint32 arrays separated from the slot structs so the per-event random
// accesses touch minimal cache footprint; on epoch wrap-around both tables
// are zeroed.
type matchScratch struct {
	gen      uint64   // store generation the tables were last sized for
	epoch    uint32   // this scratch's private epoch counter
	predMark []uint32 // indexed by predicate.ID-1: epoch when fulfilled
	subMark  []uint32 // indexed by SubID-1: epoch when enlisted as candidate
	predBuf  []predicate.ID
	candBuf  []matcher.SubID
	batchCap int // high-water result-arena capacity for MatchBatch presizing
}

var _ matcher.Matcher = (*Engine)(nil)

// New builds an engine over the shared registry and index.
func New(reg *predicate.Registry, idx *index.Index, opts Options) *Engine {
	if opts.Encoding == 0 {
		opts.Encoding = subtree.PaperEncoding
	}
	return &Engine{reg: reg, idx: idx, opts: opts}
}

// Name implements matcher.Matcher.
func (e *Engine) Name() string { return "non-canonical" }

// Subscribe compiles and registers an arbitrary Boolean subscription.
func (e *Engine) Subscribe(expr boolexpr.Expr) (matcher.SubID, error) {
	if expr == nil {
		return 0, fmt.Errorf("core: nil subscription expression")
	}
	if e.opts.Simplify {
		expr = boolexpr.Simplify(expr)
	}
	e.mu.Lock()
	defer e.mu.Unlock()

	// Record interned predicates so a late compile failure (encoding limits)
	// can roll back reference counts and index entries.
	var interned []predicate.ID
	intern := func(p predicate.P) predicate.ID {
		id := e.internLocked(p)
		interned = append(interned, id)
		return id
	}
	compiled, err := subtree.Compile(expr, intern, subtree.Options{
		Encoding: e.opts.Encoding,
		Reorder:  e.opts.Reorder,
	})
	if err != nil {
		for _, pid := range interned {
			p, gerr := e.reg.Get(pid)
			if gerr != nil {
				continue
			}
			if died, _ := e.reg.Release(pid); died {
				e.idx.Remove(pid, p)
			}
		}
		return 0, fmt.Errorf("core: compile subscription: %w", err)
	}

	id := e.allocLocked()
	s := &e.slots[id-1]
	s.compiled = compiled
	s.live = true
	e.live++
	e.gen++
	e.memTrees += compiled.MemBytes()

	for _, pid := range compiled.PredIDs {
		i := int(pid) - 1
		if i >= len(e.assoc) {
			e.assoc = append(e.assoc, make([][]matcher.SubID, i+1-len(e.assoc))...)
		}
		e.assoc[i] = append(e.assoc[i], id)
	}
	if compiled.ZeroSat {
		e.always = append(e.always, id)
	}
	return id, nil
}

// internLocked interns p in the shared registry and indexes it on first use.
func (e *Engine) internLocked(p predicate.P) predicate.ID {
	id := e.reg.Intern(p)
	if e.reg.Refs(id) == 1 {
		e.idx.Add(id, p)
	}
	return id
}

func (e *Engine) allocLocked() matcher.SubID {
	if n := len(e.free); n > 0 {
		id := e.free[n-1]
		e.free = e.free[:n-1]
		return id
	}
	e.slots = append(e.slots, slot{})
	return matcher.SubID(len(e.slots))
}

// Unsubscribe removes a subscription, releasing its predicates and shrinking
// the association table (the operation the paper argues requires explicit
// subscription storage, §2.1/§3.2).
func (e *Engine) Unsubscribe(id matcher.SubID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.aliveLocked(id) {
		return fmt.Errorf("%w: %d", matcher.ErrUnknownSubscription, id)
	}
	s := &e.slots[id-1]
	for _, pid := range s.compiled.PredIDs {
		i := int(pid) - 1
		e.assoc[i] = removeSub(e.assoc[i], id)
		if len(e.assoc[i]) == 0 {
			e.assoc[i] = nil // release backing storage for dead predicates
		}
		p, err := e.reg.Get(pid)
		if err != nil {
			return fmt.Errorf("core: unsubscribe %d: %w", id, err)
		}
		died, err := e.reg.Release(pid)
		if err != nil {
			return fmt.Errorf("core: unsubscribe %d: %w", id, err)
		}
		if died {
			e.idx.Remove(pid, p)
		}
	}
	if s.compiled.ZeroSat {
		e.always = removeSub(e.always, id)
	}
	e.memTrees -= s.compiled.MemBytes()
	*s = slot{}
	e.free = append(e.free, id)
	e.live--
	e.gen++
	return nil
}

func removeSub(s []matcher.SubID, id matcher.SubID) []matcher.SubID {
	for i, x := range s {
		if x == id {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

func (e *Engine) aliveLocked(id matcher.SubID) bool {
	return id >= 1 && int(id) <= len(e.slots) && e.slots[id-1].live
}

// Match runs both filtering phases. Calls proceed concurrently with other
// Match-family calls; only Subscribe/Unsubscribe exclude them.
//
//nclint:hotpath
func (e *Engine) Match(ev event.Event) []matcher.SubID {
	e.mu.RLock()
	defer e.mu.RUnlock()
	sc := e.getScratchRLocked()
	defer e.scratch.Put(sc)
	sc.predBuf = e.idx.Match(ev, sc.predBuf[:0])
	return e.matchScratched(sc, sc.predBuf)
}

// MatchInto is Match in append style: matching subscription IDs are
// appended to out and the extended slice returned. With a caller-recycled
// buffer the steady state allocates nothing — this is the broker's
// publish path.
//
//nclint:hotpath
func (e *Engine) MatchInto(ev event.Event, out []matcher.SubID) []matcher.SubID {
	e.mu.RLock()
	defer e.mu.RUnlock()
	sc := e.getScratchRLocked()
	defer e.scratch.Put(sc)
	sc.predBuf = e.idx.Match(ev, sc.predBuf[:0])
	epoch := e.prepare(sc, sc.predBuf)
	return e.evalPrepared(sc, epoch, out)
}

// MatchBatch runs both filtering phases for every event under a single
// read-lock acquisition with a single pooled scratch, so a batch pays the
// per-call envelope once. Every event in the batch matches against the
// same store state. The per-event rows share one arena allocation whose
// capacity is remembered across batches (see matcher.Matcher: rows are
// caller-owned but may share backing storage), so a steady-state batch
// costs two allocations regardless of batch size.
//
//nclint:hotpath
func (e *Engine) MatchBatch(evs []event.Event) [][]matcher.SubID {
	if len(evs) == 0 {
		return nil
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	sc := e.getScratchRLocked()
	defer e.scratch.Put(sc)
	out := make([][]matcher.SubID, len(evs))
	arena := make([]matcher.SubID, 0, sc.batchCap)
	for i, ev := range evs {
		sc.predBuf = e.idx.Match(ev, sc.predBuf[:0])
		epoch := e.prepare(sc, sc.predBuf)
		start := len(arena)
		arena = e.evalPrepared(sc, epoch, arena)
		if len(arena) > start {
			// Full-slice-expression cap: appending to a row can never
			// clobber its neighbour, it reallocates instead.
			out[i] = arena[start:len(arena):len(arena)]
		}
	}
	if cap(arena) > sc.batchCap {
		sc.batchCap = cap(arena)
	}
	return out
}

// MatchPredicates runs phase two only, concurrently with other readers.
//
//nclint:hotpath
func (e *Engine) MatchPredicates(fulfilled []predicate.ID) []matcher.SubID {
	e.mu.RLock()
	defer e.mu.RUnlock()
	sc := e.getScratchRLocked()
	defer e.scratch.Put(sc)
	return e.matchScratched(sc, fulfilled)
}

// getScratchRLocked takes a scratch off the pool and syncs it with the
// store: when the generation moved since the scratch was last used, the
// subscription mark table is grown to cover every allocated slot (the
// caller's read lock pins both gen and len(slots)). predMark grows lazily
// in prepare — fulfilled predicate IDs may exceed the store's own tables
// when the registry is shared with another engine.
//
//nclint:hotpath
func (e *Engine) getScratchRLocked() *matchScratch {
	sc, _ := e.scratch.Get().(*matchScratch)
	if sc == nil {
		sc = &matchScratch{}
	}
	if sc.gen != e.gen {
		if n := len(e.slots); len(sc.subMark) < n {
			sc.subMark = append(sc.subMark, make([]uint32, n-len(sc.subMark))...)
		}
		sc.gen = e.gen
	}
	return sc
}

// prepare stamps the fulfilled set into the scratch's predMark and collects
// the deduplicated candidate subscriptions into its candBuf (paper §3.2,
// step two: "subscriptions including at least one of the matching
// predicates"). Caller holds at least the read lock.
//
//nclint:hotpath
func (e *Engine) prepare(sc *matchScratch, fulfilled []predicate.ID) (epoch uint32) {
	sc.epoch++
	if sc.epoch == 0 { // wrap-around: stale stamps become ambiguous, clear
		clear(sc.predMark)
		clear(sc.subMark)
		sc.epoch = 1
	}
	epoch = sc.epoch
	for _, pid := range fulfilled {
		i := int(pid) - 1
		if i >= len(sc.predMark) {
			sc.predMark = append(sc.predMark, make([]uint32, i+1-len(sc.predMark))...)
		}
		sc.predMark[i] = epoch
	}
	sc.candBuf = sc.candBuf[:0]
	for _, pid := range fulfilled {
		i := int(pid) - 1
		if i >= len(e.assoc) {
			continue // predicate registered by another engine only
		}
		for _, sid := range e.assoc[i] {
			if sc.subMark[sid-1] == epoch {
				continue
			}
			sc.subMark[sid-1] = epoch
			sc.candBuf = append(sc.candBuf, sid)
		}
	}
	return epoch
}

// matchScratched runs phase two over the given scratch. Caller holds at
// least the read lock. The result is presized to the candidate count —
// the only allocation a phase-two pass performs, and only when there are
// candidates at all (a zero-capacity make does not allocate).
//
//nclint:hotpath
func (e *Engine) matchScratched(sc *matchScratch, fulfilled []predicate.ID) []matcher.SubID {
	epoch := e.prepare(sc, fulfilled)
	if len(sc.candBuf) == 0 && len(e.always) == 0 {
		return nil
	}
	out := make([]matcher.SubID, 0, len(sc.candBuf)+len(e.always))
	return e.evalPrepared(sc, epoch, out)
}

// evalPrepared evaluates the candidates prepared into sc (plus the
// always-evaluate list), appending matches to out. Caller holds at least
// the read lock and owns out; nothing is allocated here unless out grows.
//
//nclint:hotpath
func (e *Engine) evalPrepared(sc *matchScratch, epoch uint32, out []matcher.SubID) []matcher.SubID {
	for _, sid := range sc.candBuf {
		if subtree.EvalMarked(e.slots[sid-1].compiled.Code, sc.predMark, epoch) {
			out = append(out, sid)
		}
	}
	// Zero-satisfiable subscriptions are evaluated even without candidacy.
	for _, sid := range e.always {
		if sc.subMark[sid-1] == epoch {
			continue // already evaluated as a candidate
		}
		sc.subMark[sid-1] = epoch
		if subtree.EvalMarked(e.slots[sid-1].compiled.Code, sc.predMark, epoch) {
			out = append(out, sid)
		}
	}
	return out
}

// InstrumentedMatch runs phase two like MatchPredicates but returns the
// total number of leaf predicates inspected and the number of candidate
// evaluations performed, instead of the match set. The A1 ablation uses it
// to quantify how much work child reordering saves.
func (e *Engine) InstrumentedMatch(fulfilled []predicate.ID) (leaves, evals int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	sc := e.getScratchRLocked()
	defer e.scratch.Put(sc)
	epoch := e.prepare(sc, fulfilled)
	matched := func(pid predicate.ID) bool {
		i := int(pid) - 1
		return i >= 0 && i < len(sc.predMark) && sc.predMark[i] == epoch
	}
	for _, sid := range sc.candBuf {
		_, n := subtree.CountEvaluatedLeaves(e.slots[sid-1].compiled.Code, matched)
		leaves += n
		evals++
	}
	return leaves, evals
}

// TreeBytes returns the total encoded size of all live subscription trees —
// the storage the A2 encoding ablation compares.
func (e *Engine) TreeBytes() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	total := 0
	for i := range e.slots {
		if e.slots[i].live {
			total += len(e.slots[i].compiled.Code)
		}
	}
	return total
}

// NumSubscriptions implements matcher.Matcher.
func (e *Engine) NumSubscriptions() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.live
}

// NumUnits implements matcher.Matcher: the non-canonical engine stores one
// unit per subscription.
func (e *Engine) NumUnits() int { return e.NumSubscriptions() }

// Expr reconstructs the registered expression of a subscription (primarily
// for introspection and tests).
func (e *Engine) Expr(id matcher.SubID) (boolexpr.Expr, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if !e.aliveLocked(id) {
		return nil, fmt.Errorf("%w: %d", matcher.ErrUnknownSubscription, id)
	}
	return subtree.Decode(e.slots[id-1].compiled.Code, e.reg.Get)
}

// MemBytes estimates phase-two memory: encoded trees, the association table
// and the location table (paper §3.2: "unlike current algorithms, we
// explicitly store subscriptions and thus require memory for their
// storage").
func (e *Engine) MemBytes() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.memBytesLocked()
}

func (e *Engine) memBytesLocked() int {
	// Pooled match scratch is transient per-reader state and excluded, like
	// the paper excludes per-event working memory.
	const (
		sliceHeader  = 24
		subIDSize    = 8
		slotOverhead = 1 /* live flag */
	)
	total := e.memTrees
	total += len(e.assoc) * sliceHeader
	for _, subs := range e.assoc {
		total += len(subs) * subIDSize
	}
	total += len(e.slots) * slotOverhead
	total += len(e.free) * subIDSize
	total += len(e.always) * subIDSize
	return total
}
