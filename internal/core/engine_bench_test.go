package core_test

import (
	"math/rand"
	"sync"
	"testing"

	"noncanon/internal/core"
	"noncanon/internal/index"
	"noncanon/internal/matcher"
	"noncanon/internal/predicate"
	"noncanon/internal/workload"
)

// benchEngine loads the paper's Table 1 workload (6 predicates per
// subscription, 5000 fulfilled per event) into a fresh engine and pre-draws
// fulfilled-predicate sets.
func benchEngine(b *testing.B, subs int) (*core.Engine, [][]predicate.ID) {
	b.Helper()
	params := workload.Params{
		NumSubscriptions:  subs,
		PredsPerSub:       6,
		FulfilledPerEvent: 5000,
		Seed:              1,
	}
	eng := core.New(predicate.NewRegistry(), index.New(), core.Options{})
	for i := 0; i < subs; i++ {
		if _, err := eng.Subscribe(params.Sub(i)); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(2))
	draws := make([][]predicate.ID, 16)
	for t := range draws {
		draws[t] = params.FulfilledDraw(rng)
	}
	return eng, draws
}

// BenchmarkMatch is the single-goroutine phase-two baseline the parallel
// numbers are compared against.
func BenchmarkMatch(b *testing.B) {
	eng, draws := benchEngine(b, 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkSubs = eng.MatchPredicates(draws[i%len(draws)])
	}
}

// BenchmarkMatchParallel runs phase two from GOMAXPROCS goroutines at once.
// With the RWMutex store and pooled scratch all callers hold the read lock
// simultaneously, so per-op time should approach BenchmarkMatch divided by
// the core count (on multi-core hardware).
func BenchmarkMatchParallel(b *testing.B) {
	eng, draws := benchEngine(b, 10_000)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var local []matcher.SubID
		i := 0
		for pb.Next() {
			local = eng.MatchPredicates(draws[i%len(draws)])
			i++
		}
		_ = local
	})
}

// BenchmarkMatchParallelSerialized is the pre-refactor architecture
// reconstructed for comparison: the same parallel callers funnelled through
// one exclusive lock, the way the engine's single mutex used to serialise
// every Match. The ratio of BenchmarkMatchParallel to this benchmark is the
// speedup the concurrent read path buys.
func BenchmarkMatchParallelSerialized(b *testing.B) {
	eng, draws := benchEngine(b, 10_000)
	var mu sync.Mutex
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var local []matcher.SubID
		i := 0
		for pb.Next() {
			mu.Lock()
			local = eng.MatchPredicates(draws[i%len(draws)])
			mu.Unlock()
			i++
		}
		_ = local
	})
}

var sinkSubs []matcher.SubID
