//go:build !race

// Allocation budgets for the //nclint:hotpath-annotated matching spine.
// The race detector's instrumentation changes allocation counts, so these
// run only in unraced builds; CI's dedicated non-race test step covers
// them. The budgets are the dynamic half of the hot-path gate — the
// static half is nclint's hotpath rule — and EXPERIMENTS.md records why
// each budget is what it is.

package core

import (
	"fmt"
	"testing"

	"noncanon/internal/boolexpr"
	"noncanon/internal/event"
	"noncanon/internal/predicate"
)

// warmedEngine returns an engine with nsubs overlap-heavy subscriptions
// and a matching event, with the scratch pool and growth tables warmed by
// one throwaway match.
func warmedEngine(tb testing.TB, nsubs int) (*Engine, event.Event) {
	tb.Helper()
	e, _, _ := newEngine(Options{})
	for i := 0; i < nsubs; i++ {
		expr := boolexpr.NewAnd(
			boolexpr.Pred("sym", predicate.Eq, fmt.Sprintf("S%d", i%4)),
			boolexpr.Pred("price", predicate.Gt, i%50),
		)
		if _, err := e.Subscribe(expr); err != nil {
			tb.Fatal(err)
		}
	}
	ev := event.New().Set("sym", "S1").Set("price", 99)
	if len(e.Match(ev)) == 0 {
		tb.Fatal("warm-up event matches nothing; budget would be vacuous")
	}
	return e, ev
}

// TestMatchAllocBudget: after warm-up, one Match performs exactly one
// allocation — the caller-owned result slice, presized to the candidate
// count in matchScratched. Scratch state (predicate marks, candidate
// buffer, the index's output buffer) is pooled and reused.
func TestMatchAllocBudget(t *testing.T) {
	e, ev := warmedEngine(t, 200)
	const budget = 1
	avg := testing.AllocsPerRun(200, func() {
		if len(e.Match(ev)) == 0 {
			t.Fatal("event stopped matching")
		}
	})
	if avg > budget {
		t.Errorf("Match allocates %.1f per run, budget %d", avg, budget)
	}
}

// TestMatchIntoAllocBudget: the append-style spine is allocation-free
// once the caller recycles its buffer — this is the broker's publish
// path, and the floor the whole zero-copy refactor exists to reach.
func TestMatchIntoAllocBudget(t *testing.T) {
	e, ev := warmedEngine(t, 200)
	buf := e.MatchInto(ev, nil) // warm the caller buffer
	if len(buf) == 0 {
		t.Fatal("event stopped matching")
	}
	avg := testing.AllocsPerRun(200, func() {
		buf = e.MatchInto(ev, buf[:0])
		if len(buf) == 0 {
			t.Fatal("event stopped matching")
		}
	})
	if avg > 0 {
		t.Errorf("MatchInto allocates %.1f per run, budget 0", avg)
	}
}

// TestMatchBatchAllocBudget: a batch performs two allocations regardless
// of batch size — the outer row index and one shared result arena whose
// capacity is remembered across batches (rows are capped sub-slices of
// it, see matcher.Matcher).
func TestMatchBatchAllocBudget(t *testing.T) {
	e, ev := warmedEngine(t, 200)
	const batch = 16
	evs := make([]event.Event, batch)
	for i := range evs {
		evs[i] = ev
	}
	e.MatchBatch(evs) // warm the arena capacity hint
	const budget = 2
	avg := testing.AllocsPerRun(100, func() {
		if len(e.MatchBatch(evs)) != batch {
			t.Fatal("batch result misaligned")
		}
	})
	if avg > budget {
		t.Errorf("MatchBatch(%d) allocates %.1f per run, budget %d", batch, avg, budget)
	}
}

// TestMatchPredicatesAllocBudget: phase two alone has the same single-
// allocation profile as Match.
func TestMatchPredicatesAllocBudget(t *testing.T) {
	e, reg, idx := newEngine(Options{})
	for i := 0; i < 100; i++ {
		expr := boolexpr.Pred("price", predicate.Gt, i%10)
		if _, err := e.Subscribe(expr); err != nil {
			t.Fatal(err)
		}
	}
	ev := event.New().Set("price", 50)
	fulfilled := idx.Match(ev, nil)
	if len(fulfilled) == 0 {
		t.Fatal("no fulfilled predicates; budget would be vacuous")
	}
	_ = reg
	if len(e.MatchPredicates(fulfilled)) == 0 {
		t.Fatal("warm-up matches nothing")
	}
	const budget = 1
	avg := testing.AllocsPerRun(200, func() {
		if len(e.MatchPredicates(fulfilled)) == 0 {
			t.Fatal("predicates stopped matching")
		}
	})
	if avg > budget {
		t.Errorf("MatchPredicates allocates %.1f per run, budget %d", avg, budget)
	}
}
